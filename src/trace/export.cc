#include "trace/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace ptperf::trace {
namespace {

/// Virtual-time ns as a microsecond string with ns fraction ("12.345").
/// Pure integer formatting — no floating point, so the bytes are exact and
/// platform-independent (the --jobs byte-identity contract extends to
/// trace files).
std::string us_str(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000 < 0 ? -(ns % 1000) : ns % 1000);
  return buf;
}

void append_args_object(std::string& out, const SpanArgs& args) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
}

void append_complete_event(std::string& out, const std::string& name,
                           const char* cat, std::int64_t start_ns,
                           std::int64_t dur_ns, std::size_t pid, int tid,
                           const SpanArgs& args) {
  out += "{\"name\":\"";
  out += json_escape(name);
  out += "\",\"cat\":\"";
  out += cat;
  out += "\",\"ph\":\"X\",\"ts\":";
  out += us_str(start_ns);
  out += ",\"dur\":";
  out += us_str(dur_ns);
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":";
  append_args_object(out, args);
  out += "},\n";
}

void append_metadata(std::string& out, const char* what, std::size_t pid,
                     int tid, const std::string& name, bool per_tid) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  if (per_tid) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += ",\"args\":{\"name\":\"";
  out += json_escape(name);
  out += "\"}},\n";
}

/// Track layout inside each shard process.
int category_tid(Category c) {
  switch (c) {
    case kDownload: return 0;
    case kTor: return 1;
    case kPt: return 2;
    case kCells: return 3;
    default: return 0;
  }
}
constexpr int kPhasesTid = 4;

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string chrome_trace_json(const std::vector<ShardTrace>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (const ShardTrace& shard : traces) {
    std::size_t pid = shard.shard;
    append_metadata(out, "process_name", pid, 0,
                    "shard " + std::to_string(pid) + " [" + shard.pt + "]",
                    false);
    append_metadata(out, "thread_name", pid, category_tid(kDownload),
                    "downloads", true);
    append_metadata(out, "thread_name", pid, category_tid(kTor), "tor", true);
    append_metadata(out, "thread_name", pid, category_tid(kPt), "pt", true);
    append_metadata(out, "thread_name", pid, category_tid(kCells), "cells",
                    true);
    append_metadata(out, "thread_name", pid, kPhasesTid, "ttfb phases", true);

    for (const SpanEvent& ev : shard.data.spans) {
      SpanArgs args = ev.args;
      args.emplace_back("span_id", std::to_string(ev.id));
      if (ev.parent) args.emplace_back("parent", std::to_string(ev.parent));
      append_complete_event(out, ev.name, category_name(ev.category),
                            ev.start_ns, ev.duration_ns(), pid,
                            category_tid(ev.category), args);
    }

    // Derived TTFB phase track: phases laid back-to-back from the download
    // start, summing exactly to the TTFB the sample reports.
    for (const DownloadPhases& p : decompose_downloads(shard.data)) {
      std::int64_t t = p.start_ns;
      const std::pair<const char*, std::int64_t> phases[] = {
          {"phase/socks", p.socks_ns},
          {"phase/pt_handshake", p.pt_handshake_ns},
          {"phase/circuit_build", p.circuit_build_ns},
          {"phase/first_byte", p.first_byte_ns},
      };
      for (const auto& [name, dur] : phases) {
        SpanArgs args{{"download", std::to_string(p.download)},
                      {"target", p.target},
                      {"ttfb_us", us_str(p.ttfb_ns)}};
        append_complete_event(out, name, "phase", t, dur, pid, kPhasesTid,
                              args);
        t += dur;
      }
    }
  }
  out += "{\"name\":\"trace_end\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,"
         "\"s\":\"g\"}\n]}\n";
  return out;
}

std::string trace_jsonl(const std::vector<ShardTrace>& traces) {
  std::string out;
  for (const ShardTrace& shard : traces) {
    std::string prefix = "{\"shard\":" + std::to_string(shard.shard) +
                         ",\"pt\":\"" + json_escape(shard.pt) + "\"";
    for (const SpanEvent& ev : shard.data.spans) {
      out += prefix;
      out += ",\"type\":\"span\",\"name\":\"";
      out += json_escape(ev.name);
      out += "\",\"cat\":\"";
      out += category_name(ev.category);
      out += "\",\"id\":";
      out += std::to_string(ev.id);
      if (ev.parent) {
        out += ",\"parent\":";
        out += std::to_string(ev.parent);
      }
      out += ",\"start_us\":";
      out += us_str(ev.start_ns);
      out += ",\"dur_us\":";
      out += us_str(ev.duration_ns());
      if (!ev.args.empty()) {
        out += ",\"args\":";
        append_args_object(out, ev.args);
      }
      out += "}\n";
    }
    for (const auto& [name, value] : shard.data.counters) {
      out += prefix;
      out += ",\"type\":\"counter\",\"name\":\"";
      out += json_escape(name);
      out += "\",\"value\":";
      out += std::to_string(value);
      out += "}\n";
    }
    for (const auto& [name, values] : shard.data.histograms) {
      out += prefix;
      out += ",\"type\":\"histogram\",\"name\":\"";
      out += json_escape(name);
      out += "\",\"n\":";
      out += std::to_string(values.size());
      out += "}\n";
    }
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

bool write_trace_file(const std::string& path,
                      const std::vector<ShardTrace>& traces) {
  bool jsonl = path.size() >= 6 && path.ends_with(".jsonl");
  return write_text_file(path,
                         jsonl ? trace_jsonl(traces) : chrome_trace_json(traces));
}

}  // namespace ptperf::trace
