#include "trace/decompose.h"

#include <algorithm>

namespace ptperf::trace {
namespace {

bool contains(const SpanEvent& outer, const SpanEvent& inner) {
  return inner.start_ns >= outer.start_ns && inner.closed() &&
         outer.closed() && inner.end_ns <= outer.end_ns;
}

const SpanEvent* child_named(const TraceData& data, SpanId parent,
                             std::string_view name) {
  for (const SpanEvent& ev : data.spans) {
    if (ev.parent == parent && ev.name == name) return &ev;
  }
  return nullptr;
}

}  // namespace

std::vector<DownloadPhases> decompose_downloads(const TraceData& data) {
  std::vector<DownloadPhases> out;
  for (const SpanEvent& dl : data.spans) {
    if (dl.name != "download" || !dl.closed()) continue;

    // The fetcher parents "socks" and "first_byte" directly; the download
    // only has a TTFB when both exist and closed (first byte arrived).
    const SpanEvent* socks = child_named(data, dl.id, "socks");
    const SpanEvent* first_byte = child_named(data, dl.id, "first_byte");
    if (!socks || !first_byte || !socks->closed() || !first_byte->closed())
      continue;

    DownloadPhases p;
    p.download = dl.id;
    p.start_ns = dl.start_ns;
    for (const auto& [k, v] : dl.args) {
      if (k == "target") p.target = v;
    }

    // Circuit builds are recorded by the Tor client without a parent link
    // (they are triggered across a callback boundary); attribute by time
    // containment inside this download's SOCKS dialogue. Fetches in one
    // world are driven sequentially by the campaign, so containment is
    // unambiguous.
    std::int64_t build_total = 0;
    std::int64_t first_hop_total = 0;
    for (const SpanEvent& cb : data.spans) {
      if (cb.name != "circuit_build" || !contains(*socks, cb)) continue;
      build_total += cb.duration_ns();
      if (const SpanEvent* fh = child_named(data, cb.id, "first_hop");
          fh && fh->closed()) {
        first_hop_total += fh->duration_ns();
      }
    }

    p.pt_handshake_ns = first_hop_total;
    p.circuit_build_ns = build_total - first_hop_total;
    p.socks_ns = socks->duration_ns() - build_total;
    p.first_byte_ns = first_byte->duration_ns();
    p.ttfb_ns =
        p.socks_ns + p.pt_handshake_ns + p.circuit_build_ns + p.first_byte_ns;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<CircuitHops> circuit_hops(const TraceData& data) {
  std::vector<CircuitHops> out;
  for (const SpanEvent& cb : data.spans) {
    if (cb.name != "circuit_build" || !cb.closed()) continue;
    CircuitHops hops;
    hops.circuit_build = cb.id;
    if (const SpanEvent* fh = child_named(data, cb.id, "first_hop");
        fh && fh->closed()) {
      hops.first_hop_connect_ns = fh->duration_ns();
    }
    for (const SpanEvent& ev : data.spans) {
      if (ev.parent == cb.id && ev.name == "ntor_hop" && ev.closed())
        hops.hop_rtt_ns.push_back(ev.duration_ns());
    }
    out.push_back(std::move(hops));
  }
  return out;
}

}  // namespace ptperf::trace
