// Origin web server: hosts a website corpus and the bulk-download files.
// Speaks the minimal HTTP/1.1 of net/http.h; bodies stream out in chunks
// so large files do not materialize as single messages.
#pragma once

#include <memory>

#include "net/channel.h"
#include "net/http.h"
#include "workload/website.h"

namespace ptperf::workload {

/// Web server configuration.
struct WebServerOptions {
  std::string service = "http";
  std::size_t chunk_bytes = 8192;
};

class WebServer : public std::enable_shared_from_this<WebServer> {
 public:

  WebServer(net::Network& net, net::HostId host, const Corpus* tranco,
            const Corpus* cbl);

  void start();
  net::HostId host() const { return host_; }

  /// Resolves a request to (total body size, visual flag). Targets:
  ///   "/"            -> default page of the site named by the Host header
  ///   "/r<k>"        -> k-th sub-resource of that site
  ///   "/file<n>mb"   -> n-megabyte bulk file (host "files.example")
  /// Returns 0 on unknown targets (served as 404 with a small body).
  std::size_t lookup_size(const std::string& host,
                          const std::string& target) const;

 private:
  void serve(net::ChannelPtr ch);
  void respond(const net::ChannelPtr& ch, const net::http::Request& req);
  /// Paces a streaming body at the media bitrate (live-origin behaviour).
  void stream_body(const net::ChannelPtr& ch, std::size_t total,
                   double bytes_per_sec);

  net::Network* net_;
  net::HostId host_;
  const Corpus* tranco_;
  const Corpus* cbl_;
  WebServerOptions opts_;
};

}  // namespace ptperf::workload
