#include "workload/website.h"

#include <algorithm>
#include <cmath>

namespace ptperf::workload {

std::size_t Website::total_bytes() const {
  std::size_t total = default_page_bytes;
  for (const Resource& r : resources) total += r.size_bytes;
  return total;
}

Corpus Corpus::generate(CorpusKind kind, std::size_t n, sim::Rng rng) {
  Corpus corpus;
  corpus.sites_.reserve(n);
  const bool tranco = kind == CorpusKind::kTranco;
  const char* suffix = tranco ? "tranco" : "cbl";

  for (std::size_t i = 0; i < n; ++i) {
    sim::Rng site_rng = rng.fork(i);
    Website w;
    char name[40];
    std::snprintf(name, sizeof(name), "site%04zu.%s", i, suffix);
    w.hostname = name;

    // Default-page size: median ~55 KB (tranco) / ~38 KB (cbl), lognormal.
    double mu = std::log(tranco ? 55e3 : 38e3);
    w.default_page_bytes = static_cast<std::size_t>(
        std::clamp(site_rng.lognormal(mu, 0.75), 2e3, 2e6));

    // Sub-resource count: popular sites are heavier.
    double count_mu = std::log(tranco ? 32.0 : 22.0);
    auto n_res = static_cast<std::size_t>(
        std::clamp(site_rng.lognormal(count_mu, 0.6), 3.0, 150.0));
    w.resources.reserve(n_res);
    for (std::size_t r = 0; r < n_res; ++r) {
      Resource res;
      res.size_bytes = static_cast<std::size_t>(
          std::clamp(site_rng.pareto(6e3, 1.3), 0.5e3, 3e6));
      // Images/CSS (~60% of resources) carry visual weight.
      res.visual_weight = site_rng.next_bool(0.6)
                              ? site_rng.uniform(0.5, 2.0)
                              : site_rng.uniform(0.0, 0.2);
      w.resources.push_back(res);
    }
    corpus.sites_.push_back(std::move(w));
  }
  return corpus;
}

const Website* Corpus::find(const std::string& hostname) const {
  for (const Website& w : sites_) {
    if (w.hostname == hostname) return &w;
  }
  return nullptr;
}

std::vector<std::size_t> standard_file_sizes() {
  return {5u << 20, 10u << 20, 20u << 20, 50u << 20, 100u << 20};
}

std::string file_target_name(std::size_t bytes) {
  return "file" + std::to_string(bytes >> 20) + "mb";
}

}  // namespace ptperf::workload
