#include "workload/fetcher.h"

#include <algorithm>

#include "net/http.h"
#include "net/socks.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace ptperf::workload {
namespace {

/// One in-flight curl-style transfer: SOCKS dialogue, HTTP request,
/// streaming body count.
struct Transfer : std::enable_shared_from_this<Transfer> {
  sim::EventLoop* loop;
  std::string host;
  std::string target;
  FetchResult result;
  std::function<void(FetchResult)> done;
  net::ChannelPtr ch;
  sim::EventHandle timeout_timer;
  util::Bytes head_buffer;
  bool head_parsed = false;
  bool finished = false;

  // Flight-recorder spans: "download" covers the whole transfer;
  // "socks" (dial + SOCKS dialogue, ends at the CONNECT reply) and
  // "first_byte" (request sent -> first body byte) partition the TTFB as
  // the client observes it. Circuit-build time nests inside "socks" via
  // the Tor client's own spans (see trace/decompose.h).
  trace::SpanId download_span = 0;
  trace::SpanId socks_span = 0;
  trace::SpanId first_byte_span = 0;

  void finish(bool success, const std::string& error) {
    if (finished) return;
    finished = true;
    timeout_timer.cancel();
    result.success = success;
    result.error = error;
    if (success) result.complete_s = sim::seconds_since_start(loop->now());
    trace::Recorder* rec = loop->recorder();
    TRACE_SPAN_END(rec, socks_span);
    TRACE_SPAN_END(rec, first_byte_span);
    TRACE_SPAN_END_ARGS(
        rec, download_span,
        {{"success", success ? "1" : "0"},
         {"bytes", std::to_string(result.received_bytes)},
         {"error", error}});
    socks_span = first_byte_span = download_span = 0;
    if (ch) ch->close();
    if (done) done(result);
  }

  void arm_timeout(sim::Duration timeout) {
    auto self = shared_from_this();
    timeout_timer = loop->schedule(timeout, [self] {
      self->result.timed_out = true;
      self->finish(false, "timeout");
    });
  }

  void start(net::ChannelPtr channel) {
    ch = std::move(channel);
    auto self = shared_from_this();
    ch->set_close_handler([self] {
      self->finish(self->head_parsed &&
                       self->result.received_bytes >= self->result.expected_bytes,
                   "connection closed");
    });
    // SOCKS greeting.
    ch->set_receiver([self](util::Buf wire) { self->on_method(wire); });
    ch->send(net::socks::encode_greeting({}));
  }

  void on_method(util::BytesView wire) {
    auto method = net::socks::decode_method_select(wire);
    if (!method || *method != net::socks::kMethodNoAuth) {
      finish(false, "socks method rejected");
      return;
    }
    auto self = shared_from_this();
    ch->set_receiver([self](util::Buf w) { self->on_reply(w); });
    net::socks::ConnectRequest req;
    req.host = host;
    req.port = 80;
    ch->send(net::socks::encode_connect(req));
  }

  void on_reply(util::BytesView wire) {
    auto rep = net::socks::decode_reply(wire);
    if (!rep || rep->reply != net::socks::Reply::kSucceeded) {
      finish(false, "socks connect failed");
      return;
    }
    trace::Recorder* rec = loop->recorder();
    TRACE_SPAN_END(rec, socks_span);
    first_byte_span = TRACE_SPAN_BEGIN_UNDER(rec, trace::kDownload,
                                             "first_byte", download_span);
    auto self = shared_from_this();
    ch->set_receiver([self](util::Buf w) { self->on_body(w); });
    net::http::Request req;
    req.method = "GET";
    req.target = target;
    req.host = host;
    ch->send(net::http::encode_request(req));
  }

  void on_body(util::BytesView data) {
    if (finished) return;
    trace::Recorder* rec = loop->recorder();
    if (result.ttfb_s < 0) {
      result.ttfb_s = sim::seconds_since_start(loop->now());
      TRACE_SPAN_END(rec, first_byte_span);
    }
    TRACE_COUNT(rec, "workload/http_bytes", data.size());
    if (!head_parsed) {
      head_buffer.insert(head_buffer.end(), data.begin(), data.end());
      std::string text = util::to_string(head_buffer);
      std::size_t sep = text.find("\r\n\r\n");
      if (sep == std::string::npos) return;
      // Parse Content-Length from the head.
      std::size_t cl_pos = util::to_lower(text.substr(0, sep)).find(
          "content-length:");
      if (cl_pos == std::string::npos) {
        finish(false, "missing content-length");
        return;
      }
      result.expected_bytes = static_cast<std::size_t>(
          util::parse_u64(std::string_view(text).substr(cl_pos + 15))
              .value_or(0));
      std::size_t status_sp = text.find(' ');
      int status = status_sp == std::string::npos
                       ? 0
                       : util::parse_int(
                             std::string_view(text).substr(status_sp + 1))
                             .value_or(0);
      if (status != 200) {
        finish(false, "http status " + std::to_string(status));
        return;
      }
      head_parsed = true;
      result.received_bytes = head_buffer.size() - (sep + 4);
      head_buffer.clear();
    } else {
      result.received_bytes += data.size();
    }
    if (result.received_bytes >= result.expected_bytes) finish(true, "");
  }
};

}  // namespace

Fetcher::Fetcher(sim::EventLoop& loop, SocksDialer dialer, FetcherOptions opts)
    : loop_(&loop), dialer_(std::move(dialer)), opts_(opts) {}

void Fetcher::fetch(const std::string& host, const std::string& target,
                    sim::Duration timeout,
                    std::function<void(FetchResult)> done) {
  auto tr = std::make_shared<Transfer>();
  tr->loop = loop_;
  tr->host = host;
  tr->target = target;
  tr->result.target = host + target;
  tr->result.start_s = sim::seconds_since_start(loop_->now());
  tr->done = std::move(done);
  tr->arm_timeout(timeout);

  trace::Recorder* rec = loop_->recorder();
  tr->download_span = TRACE_SPAN_BEGIN_ARGS(
      rec, trace::kDownload, "download", 0,
      {{"target", tr->result.target}});
  // The SOCKS phase starts with the dial: for set-3 PTs the tunnel itself
  // is established here, for everyone else it is a loopback connect.
  tr->socks_span = TRACE_SPAN_BEGIN_UNDER(rec, trace::kDownload, "socks",
                                          tr->download_span);
  TRACE_COUNT(rec, "workload/fetches", 1);

  dialer_(
      [tr](net::ChannelPtr ch) { tr->start(std::move(ch)); },
      [tr](std::string err) { tr->finish(false, "dial: " + err); });
}

namespace {

/// Drives a selenium-style page load: default page, then sub-resources
/// with bounded parallelism.
struct PageLoader : std::enable_shared_from_this<PageLoader> {
  std::shared_ptr<Fetcher> fetcher;
  sim::EventLoop* loop = nullptr;
  std::string hostname;
  std::size_t n_resources = 0;
  int max_parallel = 6;
  sim::Duration timeout{};
  sim::Duration parse_delay{};

  PageLoadResult result;
  std::size_t next_resource = 0;
  int in_flight = 0;
  double start_s = 0;
  bool finished = false;
  sim::EventHandle deadline;
  std::function<void(PageLoadResult)> done;

  void run() {
    start_s = sim::seconds_since_start(loop->now());
    result.resources.resize(n_resources);
    auto self = shared_from_this();
    // Overall page-load timeout mirrors the paper's 120 s selenium setting.
    deadline = loop->schedule(timeout, [self] {
      if (self->finished) return;
      self->finished = true;
      self->result.success = false;
      self->result.load_time_s = -1;
      self->done(self->result);
    });
    fetcher->fetch(hostname, "/", timeout, [self](FetchResult r) {
      if (self->finished) return;
      self->result.page = std::move(r);
      if (!self->result.page.success) {
        // Without the default page there is nothing to parse.
        self->next_resource = self->result.resources.size();
        for (auto& res : self->result.resources) res.error = "page failed";
      }
      self->pump();
      self->maybe_finish();
    });
  }

  void pump() {
    auto self = shared_from_this();
    while (in_flight < max_parallel && next_resource < n_resources) {
      std::size_t idx = next_resource++;
      in_flight++;
      std::string target = "/r" + std::to_string(idx);
      // Browser parse delay before the request goes out.
      loop->schedule(parse_delay, [self, idx, target] {
        if (self->finished) return;
        self->fetcher->fetch(self->hostname, target, self->timeout,
                             [self, idx](FetchResult r) {
                               if (self->finished) return;
                               self->result.resources[idx] = std::move(r);
                               self->in_flight--;
                               self->pump();
                               self->maybe_finish();
                             });
      });
    }
  }

  void maybe_finish() {
    if (finished) return;
    if (next_resource < result.resources.size() || in_flight > 0) return;
    finished = true;
    deadline.cancel();
    bool ok = result.page.success;
    double last =
        result.page.success ? result.page.complete_s - start_s : -1;
    for (const FetchResult& r : result.resources) {
      if (!r.success) ok = false;
      if (r.success) last = std::max(last, r.complete_s - start_s);
    }
    result.success = ok;
    result.load_time_s = last;
    done(result);
  }
};

}  // namespace

void Fetcher::fetch_page(const Website& site,
                         std::function<void(PageLoadResult)> done) {
  auto loader = std::make_shared<PageLoader>();
  loader->fetcher = shared_from_this();
  loader->loop = loop_;
  loader->hostname = site.hostname;
  loader->n_resources = site.resources.size();
  loader->max_parallel = opts_.max_parallel;
  loader->timeout = opts_.website_timeout;
  loader->parse_delay = opts_.parse_delay;
  loader->done = std::move(done);
  loader->run();
}

double speed_index(const Website& site, const PageLoadResult& result) {
  if (!result.page.success) return -1;
  // Weighted average of visual completion offsets: the default page paints
  // the skeleton (weight 3), each visual resource contributes its weight.
  double weight_sum = 3.0;
  double acc = 3.0 * (result.page.complete_s - result.page.start_s);
  for (std::size_t i = 0; i < result.resources.size() &&
                          i < site.resources.size();
       ++i) {
    const FetchResult& r = result.resources[i];
    double w = site.resources[i].visual_weight;
    if (w <= 0) continue;
    if (!r.success) continue;
    weight_sum += w;
    acc += w * (r.complete_s - result.page.start_s);
  }
  return acc / weight_sum;
}

}  // namespace ptperf::workload
