// Measurement clients mirroring the paper's three access methods:
//   * curl      — one SOCKS connection, default page only;
//   * selenium  — default page, then sub-resources over up to six parallel
//                 SOCKS connections (browser-like), load = last completion;
//   * browsertime — selenium plus the speed-index computed from visual
//                 resource completion times.
// All timings are virtual-time seconds from request initiation, matching
// what `time curl ...` / selenium page-load timers would report.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.h"
#include "sim/event_loop.h"
#include "workload/website.h"

namespace ptperf::workload {

struct FetchResult {
  std::string target;
  double start_s = 0;
  double ttfb_s = -1;      // absolute; <0 if no byte arrived
  double complete_s = -1;  // absolute; <0 if incomplete
  std::size_t expected_bytes = 0;
  std::size_t received_bytes = 0;
  bool success = false;
  bool timed_out = false;
  std::string error;

  double elapsed() const { return success ? complete_s - start_s : -1; }
  double ttfb() const { return ttfb_s >= 0 ? ttfb_s - start_s : -1; }
  /// Fraction of the body that arrived (reliability accounting, Fig 8).
  double fraction() const {
    if (expected_bytes == 0) return success ? 1.0 : 0.0;
    return std::min(1.0, static_cast<double>(received_bytes) /
                             static_cast<double>(expected_bytes));
  }
};

struct PageLoadResult {
  FetchResult page;
  std::vector<FetchResult> resources;
  bool success = false;
  double load_time_s = -1;   // relative to page request start
  double speed_index_s = -1;  // browsertime-style visual metric
};

/// Fetcher configuration.
struct FetcherOptions {
  sim::Duration website_timeout = sim::from_seconds(120);
  sim::Duration file_timeout = sim::from_seconds(1200);
  int max_parallel = 6;
  /// Browser main-thread delay before a discovered sub-resource is
  /// requested (parse/queue time).
  sim::Duration parse_delay = sim::from_millis(15);
};

class Fetcher : public std::enable_shared_from_this<Fetcher> {
 public:
  /// Opens a fresh channel that speaks SOCKS5 on the far side (loopback to
  /// the local Tor client, or a set-3 PT tunnel).
  using SocksDialer =
      std::function<void(std::function<void(net::ChannelPtr)>,
                         std::function<void(std::string)>)>;

  Fetcher(sim::EventLoop& loop, SocksDialer dialer, FetcherOptions opts = {});

  /// curl-style single fetch of host/target.
  void fetch(const std::string& host, const std::string& target,
             sim::Duration timeout, std::function<void(FetchResult)> done);

  /// selenium-style full page load.
  void fetch_page(const Website& site,
                  std::function<void(PageLoadResult)> done);

  const FetcherOptions& options() const { return opts_; }

 private:
  sim::EventLoop* loop_;
  SocksDialer dialer_;
  FetcherOptions opts_;
};

/// Speed index from resource completion times: the visual-weight-averaged
/// completion time (seconds, relative to navigation start).
double speed_index(const Website& site, const PageLoadResult& result);

}  // namespace ptperf::workload
