// Streaming workload — the paper's named future-work use case (§A.4):
// "other use cases, e.g., audio streaming, could be explored for
// evaluating PTs' performance."
//
// Model: the client requests a constant-bitrate media stream; the origin
// pushes segments at the encoding rate; the client plays out of a buffer
// after an initial prebuffer. Whenever the buffer runs dry the player
// stalls (rebuffering). Metrics: startup delay, rebuffer count, stall
// ratio, achieved goodput — the quantities that decide whether a PT can
// carry a radio stream or a video call.
#pragma once

#include <functional>
#include <memory>

#include "net/channel.h"
#include "sim/event_loop.h"

namespace ptperf::workload {

struct StreamingSpec {
  double bitrate_kbps = 256;           // audio-stream grade
  sim::Duration duration = sim::from_seconds(60);
  sim::Duration prebuffer = sim::from_seconds(2);
  std::size_t segment_bytes = 4096;    // server send granularity
};

struct StreamingResult {
  bool started = false;          // first byte arrived
  bool completed = false;        // full stream length received
  double startup_delay_s = -1;   // request -> playback start
  int rebuffer_events = 0;
  double stalled_s = 0;          // total playback stall time
  double received_bytes = 0;
  double goodput_kbps = 0;
  std::string error;

  /// Fraction of intended playback time spent stalled.
  double stall_ratio(const StreamingSpec& spec) const {
    double d = sim::to_seconds(spec.duration);
    return d > 0 ? stalled_s / d : 0;
  }
};

/// Plays one stream through a SOCKS channel (same dialer contract as
/// Fetcher). The server side is WebServer's "/streamNkbpsMs" target.
class StreamingClient : public std::enable_shared_from_this<StreamingClient> {
 public:
  using SocksDialer =
      std::function<void(std::function<void(net::ChannelPtr)>,
                         std::function<void(std::string)>)>;

  StreamingClient(sim::EventLoop& loop, SocksDialer dialer);

  void play(const StreamingSpec& spec, sim::Duration timeout,
            std::function<void(StreamingResult)> done);

 private:
  sim::EventLoop* loop_;
  SocksDialer dialer_;
};

/// Target name understood by WebServer, e.g. "/stream256kbps60s".
std::string stream_target(const StreamingSpec& spec);
/// Parses a stream target; returns false if it is not one.
bool parse_stream_target(const std::string& target, double* bitrate_kbps,
                         double* seconds);

}  // namespace ptperf::workload
