// Synthetic website corpus standing in for Tranco top-1k and the Citizen
// Lab / Berkman blocked list (CBL-1k). Page composition (default page size,
// sub-resource count and sizes, visual weights) is drawn from heavy-tailed
// web statistics, seeded per site so every campaign sees the same web.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace ptperf::workload {

struct Resource {
  std::size_t size_bytes = 0;
  /// Contribution to "visual completeness" for the speed index (images and
  /// CSS weigh more than async scripts).
  double visual_weight = 0.0;
};

struct Website {
  std::string hostname;           // e.g. "site0042.tranco"
  std::size_t default_page_bytes = 0;
  std::vector<Resource> resources;

  std::size_t total_bytes() const;
};

enum class CorpusKind { kTranco, kCbl };

class Corpus {
 public:
  /// Generates `n` sites. Tranco sites skew larger/heavier (popular,
  /// media-rich); CBL sites skew smaller (news/blog-like blocked sites).
  static Corpus generate(CorpusKind kind, std::size_t n, sim::Rng rng);

  const std::vector<Website>& sites() const { return sites_; }
  const Website* find(const std::string& hostname) const;
  std::size_t size() const { return sites_.size(); }

 private:
  std::vector<Website> sites_;
};

/// File-download targets from the paper: 5, 10, 20, 50, 100 MB.
std::vector<std::size_t> standard_file_sizes();
std::string file_target_name(std::size_t bytes);

}  // namespace ptperf::workload
