#include "workload/streaming.h"

#include <cmath>
#include <cstdio>

#include "net/http.h"
#include "net/socks.h"
#include "util/strings.h"

namespace ptperf::workload {

std::string stream_target(const StreamingSpec& spec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/stream%.0fkbps%.0fs", spec.bitrate_kbps,
                sim::to_seconds(spec.duration));
  return buf;
}

bool parse_stream_target(const std::string& target, double* bitrate_kbps,
                         double* seconds) {
  double rate = 0, secs = 0;
  if (std::sscanf(target.c_str(), "/stream%lfkbps%lfs", &rate, &secs) != 2)
    return false;
  if (rate <= 0 || secs <= 0 || rate > 1e5 || secs > 36000) return false;
  if (bitrate_kbps) *bitrate_kbps = rate;
  if (seconds) *seconds = secs;
  return true;
}

namespace {

/// One playback session: SOCKS dial, HTTP GET, buffer simulation.
struct Session : std::enable_shared_from_this<Session> {
  sim::EventLoop* loop = nullptr;
  StreamingSpec spec;
  StreamingResult result;
  std::function<void(StreamingResult)> done;
  net::ChannelPtr ch;
  sim::EventHandle timeout_timer;
  sim::EventHandle playout_timer;

  double start_s = 0;
  bool head_parsed = false;
  util::Bytes head_buffer;
  std::size_t expected_bytes = 0;

  // Playout state.
  bool playing = false;
  double playback_clock_s = 0;     // media seconds consumed
  double stall_started_s = -1;
  bool finished = false;

  double bytes_per_media_second() const { return spec.bitrate_kbps * 125.0; }

  void finish(bool completed, const std::string& error) {
    if (finished) return;
    finished = true;
    timeout_timer.cancel();
    playout_timer.cancel();
    if (stall_started_s >= 0) {
      result.stalled_s += sim::seconds_since_start(loop->now()) - stall_started_s;
      stall_started_s = -1;
    }
    result.completed = completed;
    result.error = error;
    double elapsed = sim::seconds_since_start(loop->now()) - start_s;
    if (elapsed > 0)
      result.goodput_kbps = result.received_bytes * 8.0 / elapsed / 1000.0;
    if (ch) ch->close();
    if (done) done(result);
  }

  void start(net::ChannelPtr channel) {
    ch = std::move(channel);
    auto self = shared_from_this();
    ch->set_close_handler([self] {
      self->finish(self->result.received_bytes >= self->expected_bytes &&
                       self->expected_bytes > 0,
                   "connection closed");
    });
    ch->set_receiver([self](util::Buf m) { self->on_socks_method(m); });
    ch->send(net::socks::encode_greeting({}));
  }

  void on_socks_method(util::BytesView wire) {
    if (!net::socks::decode_method_select(wire)) {
      finish(false, "socks method");
      return;
    }
    auto self = shared_from_this();
    ch->set_receiver([self](util::Buf m) { self->on_socks_reply(m); });
    net::socks::ConnectRequest req;
    req.host = "files.example";
    req.port = 80;
    ch->send(net::socks::encode_connect(req));
  }

  void on_socks_reply(util::BytesView wire) {
    auto rep = net::socks::decode_reply(wire);
    if (!rep || rep->reply != net::socks::Reply::kSucceeded) {
      finish(false, "socks connect");
      return;
    }
    auto self = shared_from_this();
    ch->set_receiver([self](util::Buf m) { self->on_data(m); });
    net::http::Request req;
    req.method = "GET";
    req.target = stream_target(spec);
    req.host = "files.example";
    ch->send(net::http::encode_request(req));
  }

  void on_data(util::BytesView data) {
    if (finished) return;
    if (!head_parsed) {
      head_buffer.insert(head_buffer.end(), data.begin(), data.end());
      std::string text = util::to_string(head_buffer);
      std::size_t sep = text.find("\r\n\r\n");
      if (sep == std::string::npos) return;
      std::size_t cl = util::to_lower(text).find("content-length:");
      if (cl == std::string::npos) {
        finish(false, "no content-length");
        return;
      }
      expected_bytes = static_cast<std::size_t>(
          std::strtoull(text.c_str() + cl + 15, nullptr, 10));
      head_parsed = true;
      result.started = true;
      result.received_bytes =
          static_cast<double>(head_buffer.size() - (sep + 4));
      head_buffer.clear();
    } else {
      result.received_bytes += static_cast<double>(data.size());
    }
    maybe_start_playback();
    maybe_resume();
  }

  double buffered_media_s() const {
    return result.received_bytes / bytes_per_media_second() -
           playback_clock_s;
  }

  void maybe_start_playback() {
    if (playing || result.startup_delay_s >= 0) return;
    if (buffered_media_s() >= sim::to_seconds(spec.prebuffer)) {
      result.startup_delay_s = sim::seconds_since_start(loop->now()) - start_s;
      playing = true;
      schedule_playout();
    }
  }

  void schedule_playout() {
    // Consume media in 100 ms playout ticks.
    auto self = shared_from_this();
    playout_timer = loop->schedule(sim::from_millis(100), [self] {
      if (self->finished) return;
      self->playback_clock_s += 0.1;
      if (self->playback_clock_s >= sim::to_seconds(self->spec.duration)) {
        self->finish(true, "");
        return;
      }
      if (self->buffered_media_s() <= 0 &&
          self->result.received_bytes <
              static_cast<double>(self->expected_bytes)) {
        // Buffer dry: stall until more data arrives.
        self->playing = false;
        ++self->result.rebuffer_events;
        self->stall_started_s = sim::seconds_since_start(self->loop->now());
        return;
      }
      self->schedule_playout();
    });
  }

  void maybe_resume() {
    if (playing || stall_started_s < 0 || finished) return;
    // Resume once half the prebuffer re-accumulates.
    if (buffered_media_s() >= sim::to_seconds(spec.prebuffer) / 2) {
      result.stalled_s +=
          sim::seconds_since_start(loop->now()) - stall_started_s;
      stall_started_s = -1;
      playing = true;
      schedule_playout();
    }
  }
};

}  // namespace

StreamingClient::StreamingClient(sim::EventLoop& loop, SocksDialer dialer)
    : loop_(&loop), dialer_(std::move(dialer)) {}

void StreamingClient::play(const StreamingSpec& spec, sim::Duration timeout,
                           std::function<void(StreamingResult)> done) {
  auto session = std::make_shared<Session>();
  session->loop = loop_;
  session->spec = spec;
  session->done = std::move(done);
  session->start_s = sim::seconds_since_start(loop_->now());
  auto self = session;
  session->timeout_timer = loop_->schedule(timeout, [self] {
    self->finish(false, "timeout");
  });
  dialer_(
      [session](net::ChannelPtr ch) { session->start(std::move(ch)); },
      [session](std::string err) { session->finish(false, "dial: " + err); });
}

}  // namespace ptperf::workload
