#include "workload/webserver.h"

#include <charconv>

#include "util/strings.h"
#include "workload/streaming.h"

namespace ptperf::workload {

WebServer::WebServer(net::Network& net, net::HostId host, const Corpus* tranco,
                     const Corpus* cbl)
    : net_(&net), host_(host), tranco_(tranco), cbl_(cbl) {}

void WebServer::start() {
  auto self = shared_from_this();
  net_->listen(host_, opts_.service, [self](net::Pipe pipe) {
    self->serve(net::wrap_pipe(std::move(pipe)));
  });
}

std::size_t WebServer::lookup_size(const std::string& host,
                                   const std::string& target) const {
  double rate = 0, secs = 0;
  if (parse_stream_target(target, &rate, &secs)) {
    return static_cast<std::size_t>(rate * 125.0 * secs);
  }
  if (util::starts_with(target, "/file") && target.size() > 7 &&
      target.substr(target.size() - 2) == "mb") {
    std::size_t mb = 0;
    auto [ptr, ec] = std::from_chars(target.data() + 5,
                                     target.data() + target.size() - 2, mb);
    (void)ptr;
    if (ec == std::errc() && mb > 0 && mb <= 1024) return mb << 20;
    return 0;
  }

  const Website* site = nullptr;
  if (tranco_) site = tranco_->find(host);
  if (!site && cbl_) site = cbl_->find(host);
  if (!site) return 0;

  if (target == "/") return site->default_page_bytes;
  if (util::starts_with(target, "/r")) {
    std::size_t k = 0;
    auto [ptr, ec] =
        std::from_chars(target.data() + 2, target.data() + target.size(), k);
    (void)ptr;
    if (ec == std::errc() && k < site->resources.size())
      return site->resources[k].size_bytes;
  }
  return 0;
}

void WebServer::serve(net::ChannelPtr ch) {
  auto self = shared_from_this();
  auto buffer = std::make_shared<util::Bytes>();
  net::ChannelPtr ch_copy = ch;
  ch->set_receiver([self, ch_copy, buffer](util::Buf data) {
    // Requests can arrive cell-fragmented through a Tor exit: accumulate
    // until a full HTTP head parses.
    buffer->insert(buffer->end(), data.data(), data.data() + data.size());
    auto req = net::http::decode_request(*buffer);
    if (!req) return;
    buffer->clear();
    self->respond(ch_copy, *req);
  });
}

void WebServer::respond(const net::ChannelPtr& ch,
                        const net::http::Request& req) {
  std::size_t size = lookup_size(req.host, req.target);
  net::http::Response head;
  if (size == 0) {
    head.status = 404;
    head.reason = "Not Found";
    head.body = util::to_bytes("not found");
    ch->send(net::http::encode_response(head));
    return;
  }

  // Header first (with Content-Length), then the body in chunks. The body
  // content itself is irrelevant to the measurements; zero-filled chunks
  // keep memory churn low while every byte still traverses the network
  // and the onion layers.
  util::Writer w;
  w.raw("HTTP/1.1 200 OK\r\ncontent-type: application/octet-stream\r\n");
  w.raw("Content-Length: ").raw(std::to_string(size)).raw("\r\n\r\n");
  ch->send(w.take());

  double rate = 0, secs = 0;
  if (parse_stream_target(req.target, &rate, &secs)) {
    // Live-ish stream: the origin paces segments at the encoding rate
    // instead of bursting the whole object.
    stream_body(ch, size, rate * 125.0);
    return;
  }

  std::size_t remaining = size;
  while (remaining > 0) {
    std::size_t n = std::min(remaining, opts_.chunk_bytes);
    ch->send(util::Bytes(n, 0));
    remaining -= n;
  }
}

void WebServer::stream_body(const net::ChannelPtr& ch, std::size_t total,
                            double bytes_per_sec) {
  std::size_t chunk = opts_.chunk_bytes;
  sim::Duration interval =
      sim::from_seconds(static_cast<double>(chunk) / bytes_per_sec);
  auto remaining = std::make_shared<std::size_t>(total);
  sim::EventLoop* loop = &net_->loop();
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [loop, ch, chunk, interval, remaining, weak_tick] {
    if (*remaining == 0) return;
    std::size_t n = std::min(chunk, *remaining);
    ch->send(util::Bytes(n, 0));
    *remaining -= n;
    if (*remaining > 0) {
      if (auto next = weak_tick.lock()) {
        loop->schedule(interval, [next] { (*next)(); });
      }
    }
  };
  // The keep-alive: the scheduled event holds the shared function.
  loop->schedule(interval, [tick] { (*tick)(); });
}

}  // namespace ptperf::workload
