#include "sim/rng.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace ptperf::sim {
namespace {

// splitmix64: seeds the xoshiro state and mixes fork salts.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : state_) s = splitmix64(x);
}

Rng Rng::fork(std::string_view label) { return fork(fnv1a(label)); }

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t mix = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

std::uint64_t Rng::next_u64() {
  std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound 0");
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; one value per call keeps the stream stateless.
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  double u2 = next_double();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_min, double alpha) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return x_min / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  // Inverse-CDF over the (truncated) harmonic weights via rejection-free
  // approximation: acceptable for workload shaping; exact for s == 0.
  if (n == 0) throw std::invalid_argument("zipf: empty range");
  if (s <= 0.0) return static_cast<std::size_t>(next_below(n));
  // Sample using the continuous approximation to the zipf CDF.
  double u = next_double();
  double x;
  if (std::abs(1.0 - s) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    double h_n = std::pow(static_cast<double>(n), 1.0 - s);
    x = std::pow(u * (h_n - 1.0) + 1.0, 1.0 / (1.0 - s));
  }
  auto idx = static_cast<std::size_t>(x);
  idx = idx > 0 ? idx - 1 : 0;
  return std::min(idx, n - 1);
}

void Rng::fill_bytes(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next_u64();
    for (int j = 0; j < 8; ++j) out[i++] = static_cast<std::uint8_t>(v >> (8 * j));
  }
  if (i < n) {
    std::uint64_t v = next_u64();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  fill_bytes(out.data(), n);
  return out;
}

}  // namespace ptperf::sim
