// Discrete-event scheduler. Everything time-dependent in the simulated
// network (link transmissions, handshake timers, rate-limit refills,
// failure hazards) is an event on this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace ptperf::trace {
class Recorder;
}  // namespace ptperf::trace

namespace ptperf::sim {

class EventLoop;

/// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired. Safe to call repeatedly and
  /// after the loop finished.
  void cancel();
  bool valid() const { return token_ != nullptr; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::shared_ptr<bool> token) : token_(std::move(token)) {}
  std::shared_ptr<bool> token_;  // *token == true means cancelled
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at now() + delay. Negative delays are clamped
  /// to zero (run "immediately", but still via the queue to preserve
  /// causal ordering).
  EventHandle schedule(Duration delay, Callback fn);
  EventHandle schedule_at(TimePoint when, Callback fn);

  /// Runs until the queue is empty or `until` (if nonzero) is reached.
  /// Returns the number of events executed.
  std::size_t run();
  std::size_t run_until(TimePoint until);

  /// Executes the next event; false if the queue is empty. Lets callers
  /// run until an external condition holds (needed because idle-polling
  /// transports keep the queue non-empty forever).
  bool step();

  /// Steps until `done()` returns true, the queue drains, or `max_events`
  /// is exceeded. Returns whether done() became true.
  bool run_until_done(const std::function<bool()>& done,
                      std::size_t max_events = 500'000'000);

  /// True if events remain.
  bool pending() const { return !queue_.empty(); }

  std::size_t events_executed() const { return executed_; }

  /// The world's flight recorder, or nullptr when tracing is off. The
  /// loop is the one object every time-dependent component already holds,
  /// so it doubles as the recorder's well-known location; the recorder
  /// registers/unregisters itself (trace::Recorder ctor/dtor). Purely an
  /// observer — the loop never calls into it.
  trace::Recorder* recorder() const { return recorder_; }
  void set_recorder(trace::Recorder* r) { recorder_ = r; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous events
    Callback fn;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  trace::Recorder* recorder_ = nullptr;
};

}  // namespace ptperf::sim
