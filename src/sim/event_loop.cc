#include "sim/event_loop.h"

#include <limits>
#include <memory>

namespace ptperf::sim {

void EventHandle::cancel() {
  if (token_) *token_ = true;
}

EventHandle EventLoop::schedule(Duration delay, Callback fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle EventLoop::schedule_at(TimePoint when, Callback fn) {
  if (when < now_) when = now_;
  auto token = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), token});
  return EventHandle(token);
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).fn),
             top.cancelled};
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.when;
    ev.fn();
    ++executed_;
    return true;
  }
  return false;
}

bool EventLoop::run_until_done(const std::function<bool()>& done,
                               std::size_t max_events) {
  for (std::size_t i = 0; i < max_events; ++i) {
    if (done()) return true;
    if (!step()) return done();
  }
  return done();
}

std::size_t EventLoop::run() {
  return run_until(TimePoint{std::numeric_limits<std::int64_t>::max()});
}

std::size_t EventLoop::run_until(TimePoint until) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    // Move out before popping; callbacks may schedule more events.
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).fn),
             top.cancelled};
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.when;
    ev.fn();
    ++count;
    ++executed_;
  }
  if (now_ < until && until.ns != std::numeric_limits<std::int64_t>::max())
    now_ = until;
  return count;
}

}  // namespace ptperf::sim
