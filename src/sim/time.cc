#include "sim/time.h"

#include <cstdio>

namespace ptperf::sim {

std::string format_duration(Duration d) {
  double s = to_seconds(d);
  char buf[48];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

}  // namespace ptperf::sim
