#include "sim/time.h"

#include <cstdio>

namespace ptperf::sim {

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string format_duration(Duration d) {
  double s = to_seconds(d);
  char buf[48];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

}  // namespace ptperf::sim
