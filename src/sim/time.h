// Virtual time for the discrete-event simulator. All simulation timestamps
// are nanoseconds since simulation start; Duration/TimePoint are strong
// types so wall-clock and virtual time can never be mixed up.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ptperf::sim {

/// Nanosecond-resolution duration in virtual time.
using Duration = std::chrono::nanoseconds;

/// Nanoseconds since simulation start.
struct TimePoint {
  std::int64_t ns = 0;

  friend auto operator<=>(const TimePoint&, const TimePoint&) = default;
  TimePoint operator+(Duration d) const { return {ns + d.count()}; }
  Duration operator-(TimePoint other) const { return Duration(ns - other.ns); }
  TimePoint& operator+=(Duration d) {
    ns += d.count();
    return *this;
  }
};

inline constexpr Duration from_seconds(double s) {
  return Duration(static_cast<std::int64_t>(s * 1e9));
}

inline constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}

inline double seconds_since_start(TimePoint t) {
  return static_cast<double>(t.ns) / 1e9;
}

inline constexpr Duration from_millis(double ms) { return from_seconds(ms / 1e3); }
inline constexpr double to_millis(Duration d) { return to_seconds(d) * 1e3; }

std::string format_duration(Duration d);

/// Wall-clock microseconds from a monotonic clock. This is the ONLY
/// sanctioned wall-time source in the tree (the simlint banned-time rule
/// exempts src/sim/time.* alone): it exists purely so the bench harness can
/// report shard wall times and speedups. Wall time must never feed back
/// into simulation state — results would stop replaying.
std::int64_t wall_now_us();

}  // namespace ptperf::sim
