// Deterministic RNG (xoshiro256**) plus the distributions the workload and
// network models draw from. Every simulation object derives its stream from
// a root seed, so whole measurement campaigns replay bit-exactly.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ptperf::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream; `label` namespaces the purpose
  /// (e.g. "link-jitter") so adding a new consumer never perturbs others.
  Rng fork(std::string_view label);
  Rng fork(std::uint64_t salt);

  std::uint64_t next_u64();
  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform in [0, 1).
  double next_double();
  bool next_bool(double p_true);

  double uniform(double lo, double hi);
  /// Exponential with the given mean (not rate).
  double exponential(double mean);
  double normal(double mean, double stddev);
  /// Log-normal given the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Pareto with scale x_m and shape alpha (heavy-tailed web object sizes).
  double pareto(double x_min, double alpha);
  /// Zipf-like rank sampling in [0, n) with exponent s (website popularity).
  std::size_t zipf(std::size_t n, double s);

  /// Fills a byte vector (used for keys/nonces in protocol handshakes).
  void fill_bytes(std::uint8_t* out, std::size_t n);
  std::vector<std::uint8_t> bytes(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace ptperf::sim
