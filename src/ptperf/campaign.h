// Campaign runner: drives the paper's measurement types (Table 1) against
// a PtStack inside a Scenario — website access via curl and selenium, bulk
// file downloads, TTFB capture, reliability classification. Within one
// Scenario, measurements run sequentially in that world's virtual time,
// each website over a fresh circuit (matching the paper's methodology),
// with think-time gaps so transport state (polling backoffs, windows)
// settles between measurements. Campaign is the per-shard worker of the
// sharded engine (src/ptperf/parallel.h): the engine replicates
// Scenario+PtStack+Campaign per shard and merges their samples in
// deterministic plan order, so whole campaigns scale across cores without
// this class ever seeing a second thread.
#pragma once

#include <vector>

#include "ptperf/transports.h"
#include "workload/fetcher.h"

namespace ptperf {

struct WebsiteSample {
  std::string pt;
  std::string site;
  int rep = 0;
  workload::FetchResult result;
};

struct PageSample {
  std::string pt;
  std::string site;
  int rep = 0;
  workload::PageLoadResult result;
  double speed_index_s = -1;
};

struct FileSample {
  std::string pt;
  std::size_t size_bytes = 0;
  int rep = 0;
  workload::FetchResult result;
};

/// Reliability classes of §4.6 / Fig 8a.
enum class DownloadOutcome { kComplete, kPartial, kFailed };
DownloadOutcome classify(const workload::FetchResult& r);
std::string_view outcome_name(DownloadOutcome o);

/// Retry/timeout policy for reliability runs. The paper retried failed
/// bulk downloads from scratch; each retry gets a fresh circuit after a
/// fixed backoff.
struct RetryPolicy {
  /// Extra attempts after the first (0 = classify the first attempt).
  int max_retries = 0;
  /// Also retry attempts that delivered some bytes (kPartial), not just
  /// total failures.
  bool retry_on_partial = false;
  sim::Duration backoff = sim::from_seconds(2);
};

/// One reliability measurement: the classified final attempt plus how
/// many attempts the retry policy consumed.
struct ReliabilitySample {
  std::string pt;
  std::size_t size_bytes = 0;
  int rep = 0;
  int attempts = 1;
  DownloadOutcome outcome = DownloadOutcome::kFailed;
  workload::FetchResult result;
};

struct OutcomeCounts {
  int complete = 0;
  int partial = 0;
  int failed = 0;
  int total() const { return complete + partial + failed; }
};
OutcomeCounts count_outcomes(const std::vector<ReliabilitySample>& xs);

struct CampaignOptions {
  int website_reps = 5;   // paper: each website five times
  int file_reps = 10;     // paper: each file ten times
  sim::Duration website_timeout = sim::from_seconds(120);
  sim::Duration file_timeout = sim::from_seconds(1200);
  sim::Duration think_gap = sim::from_seconds(1);
  /// Fresh circuit per website (the paper's per-site circuits).
  bool new_circuit_per_site = true;
  /// Re-sample the guard per site: the paper's measurements span a year
  /// of natural guard rotation, so per-site rotation recovers the
  /// population-average first hop for non-bridge transports.
  bool rotate_guard_per_site = true;
};

class Campaign {
 public:
  Campaign(Scenario& scenario, CampaignOptions opts = {});

  /// curl-style website access over each site x reps.
  std::vector<WebsiteSample> run_website_curl(
      PtStack& stack, const std::vector<const workload::Website*>& sites);

  /// selenium-style page loads (skipped for transports that cannot carry
  /// parallel streams — the campaign returns empty, as the paper excludes
  /// camoufler from selenium runs).
  std::vector<PageSample> run_website_selenium(
      PtStack& stack, const std::vector<const workload::Website*>& sites);

  /// Bulk downloads of the given sizes x reps from files.example.
  std::vector<FileSample> run_file_downloads(
      PtStack& stack, const std::vector<std::size_t>& sizes);

  /// Like run_file_downloads, but classifies every attempt into the
  /// §4.6 taxonomy and applies a retry policy: a failed (and optionally
  /// partial) attempt is redone over a fresh circuit after the backoff,
  /// up to max_retries times; the final attempt is the sample.
  std::vector<ReliabilitySample> run_reliability(
      PtStack& stack, const std::vector<std::size_t>& sizes,
      RetryPolicy retry = {});

  /// First n sites of a corpus as measurement targets.
  static std::vector<const workload::Website*> take_sites(
      const workload::Corpus& corpus, std::size_t n);

  /// Merge of two corpora subsets (Tranco + CBL runs).
  static std::vector<const workload::Website*> merge(
      std::vector<const workload::Website*> a,
      const std::vector<const workload::Website*>& b);

  const CampaignOptions& options() const { return opts_; }

 private:
  Scenario* scenario_;
  CampaignOptions opts_;
};

/// Convenience extraction for the stats layer.
std::vector<double> elapsed_seconds(const std::vector<WebsiteSample>& xs);
std::vector<double> ttfb_seconds(const std::vector<WebsiteSample>& xs);
std::vector<double> load_seconds(const std::vector<PageSample>& xs);

/// Per-site average access time (the paper averages the five accesses of
/// each site before plotting/testing). Sites with no successful access are
/// dropped; `aligned_to` (optional) keeps only sites present in both.
std::vector<double> per_site_means(const std::vector<WebsiteSample>& xs);

}  // namespace ptperf
