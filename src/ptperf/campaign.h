// Campaign runner: drives the paper's measurement types (Table 1) against
// a PtStack inside a Scenario — website access via curl and selenium, bulk
// file downloads, TTFB capture, reliability classification. Measurements
// run sequentially in virtual time, each website over a fresh circuit
// (matching the paper's methodology), with think-time gaps so transport
// state (polling backoffs, windows) settles between measurements.
#pragma once

#include <vector>

#include "ptperf/transports.h"
#include "workload/fetcher.h"

namespace ptperf {

struct WebsiteSample {
  std::string pt;
  std::string site;
  int rep = 0;
  workload::FetchResult result;
};

struct PageSample {
  std::string pt;
  std::string site;
  int rep = 0;
  workload::PageLoadResult result;
  double speed_index_s = -1;
};

struct FileSample {
  std::string pt;
  std::size_t size_bytes = 0;
  int rep = 0;
  workload::FetchResult result;
};

/// Reliability classes of §4.6 / Fig 8a.
enum class DownloadOutcome { kComplete, kPartial, kFailed };
DownloadOutcome classify(const workload::FetchResult& r);
std::string_view outcome_name(DownloadOutcome o);

struct CampaignOptions {
  int website_reps = 5;   // paper: each website five times
  int file_reps = 10;     // paper: each file ten times
  sim::Duration website_timeout = sim::from_seconds(120);
  sim::Duration file_timeout = sim::from_seconds(1200);
  sim::Duration think_gap = sim::from_seconds(1);
  /// Fresh circuit per website (the paper's per-site circuits).
  bool new_circuit_per_site = true;
  /// Re-sample the guard per site: the paper's measurements span a year
  /// of natural guard rotation, so per-site rotation recovers the
  /// population-average first hop for non-bridge transports.
  bool rotate_guard_per_site = true;
};

class Campaign {
 public:
  Campaign(Scenario& scenario, CampaignOptions opts = {});

  /// curl-style website access over each site x reps.
  std::vector<WebsiteSample> run_website_curl(
      PtStack& stack, const std::vector<const workload::Website*>& sites);

  /// selenium-style page loads (skipped for transports that cannot carry
  /// parallel streams — the campaign returns empty, as the paper excludes
  /// camoufler from selenium runs).
  std::vector<PageSample> run_website_selenium(
      PtStack& stack, const std::vector<const workload::Website*>& sites);

  /// Bulk downloads of the given sizes x reps from files.example.
  std::vector<FileSample> run_file_downloads(
      PtStack& stack, const std::vector<std::size_t>& sizes);

  /// First n sites of a corpus as measurement targets.
  static std::vector<const workload::Website*> take_sites(
      const workload::Corpus& corpus, std::size_t n);

  /// Merge of two corpora subsets (Tranco + CBL runs).
  static std::vector<const workload::Website*> merge(
      std::vector<const workload::Website*> a,
      const std::vector<const workload::Website*>& b);

  const CampaignOptions& options() const { return opts_; }

 private:
  Scenario* scenario_;
  CampaignOptions opts_;
};

/// Convenience extraction for the stats layer.
std::vector<double> elapsed_seconds(const std::vector<WebsiteSample>& xs);
std::vector<double> ttfb_seconds(const std::vector<WebsiteSample>& xs);
std::vector<double> load_seconds(const std::vector<PageSample>& xs);

/// Per-site average access time (the paper averages the five accesses of
/// each site before plotting/testing). Sites with no successful access are
/// dropped; `aligned_to` (optional) keeps only sites present in both.
std::vector<double> per_site_means(const std::vector<WebsiteSample>& xs);

}  // namespace ptperf
