// Sharded campaign engine. A campaign is split into independent shards —
// one per (PT, work-item chunk) — and each shard gets a whole private
// world: its own Scenario (event loop, network, consensus, relays) and
// PtStack, seeded from Rng::fork("shard/<pt>/<chunk>") off the campaign's
// base seed. Shards run on a fixed-size thread pool and their samples are
// merged in plan order, so the output is a pure function of (base seed,
// plan) — byte-identical whether the shards run on one thread or sixteen,
// and whatever order they happen to finish in. The single-shard core stays
// thread-free by construction (simlint's banned-thread rule); all
// threading in src/ lives in src/ptperf/parallel*. See
// docs/PARALLEL_EXECUTION.md for the determinism argument.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "population/population.h"
#include "ptperf/campaign.h"

namespace ptperf {

namespace checkpoint {
class Store;
}  // namespace checkpoint

/// One unit of independent work: a PT (nullopt = vanilla Tor) and a
/// half-open slice [item_begin, item_end) of the campaign's work-item list
/// (websites or file sizes), plus the derived seed of the shard's world.
struct ShardSpec {
  std::size_t index = 0;        // position in the plan == merge position
  std::optional<PtId> pt;       // nullopt => vanilla Tor
  std::string pt_name;          // "tor" or the PT's name
  std::size_t item_begin = 0;
  std::size_t item_end = 0;
  std::size_t chunk_index = 0;  // per-PT chunk ordinal
  std::uint64_t seed = 0;       // scenario seed for this shard's world
};

/// Scenario seed for one shard: an independent stream forked off the base
/// seed, namespaced by PT and chunk so adding PTs or re-chunking one PT
/// never perturbs another shard's world.
std::uint64_t shard_seed(std::uint64_t base_seed, std::string_view pt_name,
                         std::size_t chunk_index);

/// The full, jobs-independent decomposition of a campaign. Building the
/// plan never looks at thread count — the same (base seed, PT list, item
/// count, chunking) always yields the same shards with the same seeds,
/// which is what makes `--jobs 1` and `--jobs N` byte-identical.
class ShardPlan {
 public:
  ShardPlan() = default;

  /// One shard per PT x item-chunk. `items_per_shard` = 0 puts each PT's
  /// whole item list in a single shard (enough parallelism for the usual
  /// 13-stack sweep); smaller chunks trade scenario-construction overhead
  /// for balance.
  static ShardPlan build(std::uint64_t base_seed,
                         const std::vector<std::optional<PtId>>& pts,
                         std::size_t item_count,
                         std::size_t items_per_shard = 0);

  const std::vector<ShardSpec>& shards() const { return shards_; }
  std::size_t size() const { return shards_.size(); }

 private:
  std::vector<ShardSpec> shards_;
};

/// Where one shard's wall/virtual time went (imbalance + speedup
/// observability; printed by the bench harness under --verbose).
struct ShardTiming {
  std::size_t shard = 0;
  std::string pt;
  std::size_t items = 0;
  double virtual_seconds = 0;  // simulated time the shard's world advanced
  std::int64_t wall_us = 0;    // real time the shard occupied a pool thread
};

/// Fixed-size thread pool running index-addressed tasks. Tasks must only
/// touch state owned by their own index (the engine gives each shard its
/// own result slot); the pool itself imposes no ordering, which is safe
/// exactly because merging happens by index afterwards. jobs <= 1 runs
/// every task inline on the calling thread — the legacy thread-free path.
class ParallelExecutor {
 public:
  explicit ParallelExecutor(int jobs);

  int jobs() const { return jobs_; }

  /// Runs task(0..n-1) across the pool; returns when all completed. The
  /// first exception a task throws is rethrown here after the pool drains.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& task);

  /// Hardware concurrency, at least 1 (the `--jobs` default).
  static int hardware_jobs();

 private:
  int jobs_ = 1;
};

/// Shard-engine front end for the paper's campaign types. Owns the
/// replicable world recipe (base ScenarioConfig + per-shard configure
/// hooks) and runs plans over it, merging samples in plan order and
/// accumulating per-shard timings and injected-fault counters.
struct ShardedCampaignConfig {
  /// Base world recipe. `scenario.seed` is the campaign's base seed; each
  /// shard overrides `seed` with its fork and pins `corpus_seed` to the
  /// base so all shards measure the same synthetic web.
  ScenarioConfig scenario;
  CampaignOptions campaign;
  TransportFactoryOptions factory;
  int jobs = 1;
  /// Work items (sites or file sizes) per shard; 0 = one chunk per PT.
  std::size_t items_per_shard = 0;
  /// Flight-recorder category mask (trace::Category bits). 0 = tracing
  /// off: no recorder is attached, every TRACE_* site is a no-op, and no
  /// per-shard trace data is collected. Nonzero masks never change the
  /// samples — the recorder is a pure observer (see src/trace/trace.h).
  unsigned trace_categories = 0;
  /// Per-shard world setup (e.g. install a fault plan). Must be a pure
  /// function of the Scenario it receives — it runs once in every shard.
  std::function<void(Scenario&)> configure_scenario;
  /// Per-shard stack setup (e.g. snowflake load regime).
  std::function<void(Scenario&, PtStack&)> configure_stack;
  /// Optional checkpoint store (src/ptperf/checkpoint.h). When set, every
  /// run registers its plan with the store, skips shards the snapshot
  /// already holds (decoding their recorded samples/timing/faults into the
  /// merge slots), and records each freshly-completed shard — so a killed
  /// run resumed from its snapshot merges to byte-identical output.
  /// Shared, not owned: the ensemble layer copies this config per
  /// repetition and every repetition must append to the same snapshot.
  std::shared_ptr<checkpoint::Store> checkpoint;
};

/// Which sites a website campaign measures: the first `tranco` Tranco
/// sites merged with the first `cbl` CBL sites, resolved inside each
/// shard's own scenario (identical across shards via corpus_seed).
struct SiteSelection {
  std::size_t tranco = 0;
  std::size_t cbl = 0;
  std::size_t count() const { return tranco + cbl; }
};

/// One paired fixed-circuit measurement (fig9 / §5.2): the same site
/// fetched over vanilla Tor and over the PT on the same circuit in the
/// same world, plus the PT's per-layer wire-byte deltas for its share of
/// the work (transport connect, circuit build, fetch). The byte columns
/// inherit the StackAccounting invariant — wire_bytes == payload_bytes +
/// handshake_bytes + framing_bytes + carrier_bytes, exactly, per sample —
/// so any aggregation of them sums exactly too.
struct OverheadSample {
  std::string pt;
  std::string site;
  double tor_s = -1;  // vanilla fetch seconds; < 0 = failed
  double pt_s = -1;   // PT fetch seconds; < 0 = failed
  std::int64_t payload_bytes = 0;
  std::int64_t handshake_bytes = 0;
  std::int64_t framing_bytes = 0;
  std::int64_t carrier_bytes = 0;
  std::int64_t wire_bytes = 0;
  std::int64_t handshake_rtts = 0;

  bool ok() const { return tor_s >= 0 && pt_s >= 0; }
  double diff() const { return pt_s - tor_s; }
};

class ShardedCampaign {
 public:
  explicit ShardedCampaign(ShardedCampaignConfig cfg);

  std::vector<WebsiteSample> run_website_curl(
      const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites);
  std::vector<PageSample> run_website_selenium(
      const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites);
  std::vector<FileSample> run_file_downloads(
      const std::vector<std::optional<PtId>>& pts,
      const std::vector<std::size_t>& sizes);
  std::vector<ReliabilitySample> run_reliability(
      const std::vector<std::optional<PtId>>& pts,
      const std::vector<std::size_t>& sizes, RetryPolicy retry = {});
  /// Fig-9 paired campaign: every shard's world stands up vanilla Tor AND
  /// the shard's PT, pins both to the same fixed circuit per site, and
  /// measures back-to-back fetches plus the PT's per-layer byte ledger
  /// (`pts` lists PTs only — the vanilla baseline is built inside each
  /// shard, not as its own shard).
  std::vector<OverheadSample> run_overhead(const std::vector<PtId>& pts,
                                           const SiteSelection& sites);

  /// Population-driven mode: shards BY USER COHORT instead of by PT — each
  /// cohort's arrival/departure series is a pure function of
  /// (campaign seed, cohort name) via Rng::fork("population/<cohort>"), so
  /// cohorts run across the pool and merge in plan (cohort-index) order to
  /// a Trajectory that is byte-identical at any --jobs. The config's
  /// `seed` field is overridden with the campaign's scenario seed so the
  /// fleet rides the same seed tree as the measured worlds. Cohort shards
  /// report ShardTiming rows (pt = "population/<cohort>") but do not touch
  /// the checkpoint store — campaign snapshot indices are unchanged.
  population::Trajectory run_population(population::PopulationConfig pcfg);

  const ShardedCampaignConfig& config() const { return cfg_; }

  /// Per-shard timings, accumulated across runs, in plan (merge) order.
  const std::vector<ShardTiming>& timings() const { return timings_; }

  /// Per-shard flight-recorder captures, accumulated across runs in plan
  /// (merge) order — byte-identical at any --jobs, exactly like samples.
  /// Empty unless cfg.trace_categories is nonzero.
  const std::vector<trace::ShardTrace>& traces() const { return traces_; }

  /// Injected-fault counters summed over every shard's injector, in plan
  /// order (deterministic for a given seed + plan).
  std::uint64_t injected_faults(fault::FaultKind kind) const {
    return fault_counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected_faults() const;

  /// The campaign's PT list as plan input: vanilla Tor first, then `pts`
  /// (the bench convention).
  static std::vector<std::optional<PtId>> with_vanilla(
      const std::vector<PtId>& pts);

 private:
  template <typename Sample, typename Body>
  std::vector<Sample> run_plan(const ShardPlan& plan, const Body& body);

  ShardedCampaignConfig cfg_;
  std::vector<ShardTiming> timings_;
  std::vector<trace::ShardTrace> traces_;
  std::array<std::uint64_t, static_cast<std::size_t>(fault::FaultKind::kCount_)>
      fault_counts_{};
};

}  // namespace ptperf
