// Scenario: one self-contained simulated world — event loop, network
// topology, Tor consensus + running relays, origin web servers with the
// Tranco/CBL corpora and bulk files, and client host(s). Experiments build
// a Scenario, attach a client stack (vanilla Tor or a PT), and fetch.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "net/network.h"
#include "sim/event_loop.h"
#include "trace/trace.h"
#include "tor/client.h"
#include "tor/directory.h"
#include "tor/relay.h"
#include "tor/socks_server.h"
#include "workload/fetcher.h"
#include "workload/webserver.h"

namespace ptperf {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  /// Seed for website-corpus generation; 0 means "use `seed`" (the legacy
  /// single-world behaviour). The sharded campaign engine pins this to the
  /// campaign's base seed so every shard — whose own `seed` is a distinct
  /// fork — measures the exact same synthetic web.
  std::uint64_t corpus_seed = 0;
  tor::ConsensusParams consensus;
  net::Region client_region = net::Region::kLondon;
  net::Region web_region = net::Region::kUsEast;
  std::size_t tranco_sites = 100;
  std::size_t cbl_sites = 100;
  /// Client connected via WiFi instead of ethernet (§4.7): higher jitter,
  /// lower effective access rate.
  bool wireless_client = false;
};

/// Everything a measurement client needs: the Tor client, its local SOCKS
/// listener, and a fetcher dialling that listener.
struct ClientStack {
  std::shared_ptr<tor::TorClient> tor;
  std::shared_ptr<tor::TorSocksServer> socks;
  std::shared_ptr<workload::Fetcher> fetcher;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  sim::EventLoop& loop() { return loop_; }
  net::Network& network() { return *net_; }
  const tor::Consensus& consensus() const { return directory_.consensus; }
  const ScenarioConfig& config() const { return config_; }

  net::HostId client_host() const { return client_host_; }
  net::HostId web_host() const { return web_host_; }
  const workload::Corpus& tranco() const { return tranco_; }
  const workload::Corpus& cbl() const { return cbl_; }

  /// The private onion key of a relay (needed when standing up bridge
  /// relays co-hosted with PT servers).
  const crypto::X25519Key& onion_private(tor::RelayIndex i) const {
    return directory_.onion_private.at(i);
  }

  std::shared_ptr<tor::Relay> relay(tor::RelayIndex i) { return relays_.at(i); }

  /// Adds a bridge relay (kFlagBridge) on a new lightly-loaded host in
  /// `region` and starts it. Returns its consensus index. This models the
  /// Tor-project-managed PT bridges of §4.2.1 — low background load is the
  /// mechanism behind "some PTs beat vanilla Tor".
  tor::RelayIndex add_bridge(net::Region region, double background_load = 0.1,
                             double mbps = 400, double proc_ms = 40);

  /// Adds an extra client host (e.g. a second vantage point).
  net::HostId add_client_host(net::Region region, bool wireless = false,
                              const std::string& name = "client2");

  /// Adds an auxiliary host (PT server, broker, resolver, ...) with
  /// "infrastructure" traits.
  net::HostId add_infra_host(const std::string& name, net::Region region,
                             double mbps = 400, double load = 0.05);

  /// Fresh deterministic RNG stream for a component.
  sim::Rng fork_rng(const std::string& label) { return rng_.fork(label); }

  /// Installs a fault-injection plan for this world. The injector draws
  /// from its own stream forked directly off the root seed (not off the
  /// scenario's member RNG), so installing — or later emptying — a plan
  /// never perturbs any other component's randomness. Returns the
  /// injector so callers can read injected-fault counters.
  fault::FaultInjector& install_fault_plan(fault::FaultPlan plan);
  fault::FaultInjector* fault_injector() { return fault_.get(); }

  /// Attaches a flight recorder for the selected categories (a bitmask of
  /// trace::Category). The recorder registers itself as loop().recorder(),
  /// where every instrumented component finds it; without this call all
  /// TRACE_* sites are null-recorder no-ops. Idempotent: a second call
  /// re-creates the recorder with the new mask.
  trace::Recorder& enable_trace(unsigned categories = trace::kDefault);
  trace::Recorder* trace_recorder() { return trace_.get(); }

  /// Vanilla-Tor client stack on the main client host.
  ClientStack make_vanilla_stack(const std::string& socks_service = "socks");

  /// Stack pieces on an arbitrary host (PT factories reuse this).
  std::shared_ptr<tor::TorClient> make_tor_client(net::HostId host);
  std::shared_ptr<workload::Fetcher> make_loopback_fetcher(
      net::HostId host, const std::string& socks_service);
  workload::Fetcher::SocksDialer make_loopback_dialer(
      net::HostId host, const std::string& socks_service);

  /// Resolver every exit uses: any site hostname or "files.example" maps
  /// to the web server host; aliases added via add_exit_alias() extend it.
  std::optional<net::HostId> resolve_exit(const std::string& hostname) const;

  /// Maps an extra hostname to a host (echo responders, custom origins).
  void add_exit_alias(const std::string& hostname, net::HostId host) {
    exit_aliases_[hostname] = host;
  }

 private:
  ScenarioConfig config_;
  sim::EventLoop loop_;
  sim::Rng rng_;
  std::unique_ptr<net::Network> net_;
  tor::GeneratedConsensus directory_;
  std::vector<std::shared_ptr<tor::Relay>> relays_;
  workload::Corpus tranco_;
  workload::Corpus cbl_;
  net::HostId client_host_ = 0;
  net::HostId web_host_ = 0;
  std::map<std::string, net::HostId> exit_aliases_;
  std::shared_ptr<workload::WebServer> web_server_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<trace::Recorder> trace_;
};

/// Client access-link traits for wired/wireless media.
net::HostTraits client_traits(bool wireless);

}  // namespace ptperf
