#include "ptperf/campaign.h"

#include <map>

namespace ptperf {

DownloadOutcome classify(const workload::FetchResult& r) {
  if (r.success) return DownloadOutcome::kComplete;
  if (r.received_bytes == 0) return DownloadOutcome::kFailed;
  return DownloadOutcome::kPartial;
}

std::string_view outcome_name(DownloadOutcome o) {
  switch (o) {
    case DownloadOutcome::kComplete: return "complete";
    case DownloadOutcome::kPartial: return "partial";
    case DownloadOutcome::kFailed: return "failed";
  }
  return "unknown";
}

Campaign::Campaign(Scenario& scenario, CampaignOptions opts)
    : scenario_(&scenario), opts_(opts) {}

std::vector<const workload::Website*> Campaign::take_sites(
    const workload::Corpus& corpus, std::size_t n) {
  std::vector<const workload::Website*> out;
  for (std::size_t i = 0; i < corpus.sites().size() && i < n; ++i)
    out.push_back(&corpus.sites()[i]);
  return out;
}

std::vector<const workload::Website*> Campaign::merge(
    std::vector<const workload::Website*> a,
    const std::vector<const workload::Website*>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

std::vector<WebsiteSample> Campaign::run_website_curl(
    PtStack& stack, const std::vector<const workload::Website*>& sites) {
  std::vector<WebsiteSample> samples;
  samples.reserve(sites.size() * static_cast<std::size_t>(opts_.website_reps));

  std::size_t site_idx = 0;
  int rep = 0;
  bool running = false;
  bool finished = sites.empty();
  sim::EventLoop& loop = scenario_->loop();

  std::function<void()> start_next = [&]() {
    if (site_idx >= sites.size()) {
      finished = true;
      return;
    }
    if (rep == 0) {
      if (opts_.rotate_guard_per_site && stack.rotate_guard)
        stack.rotate_guard();
      if (opts_.new_circuit_per_site) stack.new_identity();
    }
    running = true;
    const workload::Website* site = sites[site_idx];
    stack.fetcher->fetch(
        site->hostname, "/", opts_.website_timeout,
        [&, site](workload::FetchResult r) {
          WebsiteSample s;
          s.pt = stack.name();
          s.site = site->hostname;
          s.rep = rep;
          s.result = std::move(r);
          samples.push_back(std::move(s));
          if (++rep >= opts_.website_reps) {
            rep = 0;
            ++site_idx;
          }
          running = false;
          loop.schedule(opts_.think_gap, [&] { start_next(); });
        });
  };

  start_next();
  loop.run_until_done([&] { return finished && !running; });
  return samples;
}

std::vector<PageSample> Campaign::run_website_selenium(
    PtStack& stack, const std::vector<const workload::Website*>& sites) {
  std::vector<PageSample> samples;
  if (!stack.supports_selenium()) return samples;

  std::size_t site_idx = 0;
  int rep = 0;
  bool running = false;
  bool finished = sites.empty();
  sim::EventLoop& loop = scenario_->loop();

  std::function<void()> start_next = [&]() {
    if (site_idx >= sites.size()) {
      finished = true;
      return;
    }
    if (rep == 0) {
      if (opts_.rotate_guard_per_site && stack.rotate_guard)
        stack.rotate_guard();
      if (opts_.new_circuit_per_site) stack.new_identity();
    }
    running = true;
    const workload::Website* site = sites[site_idx];
    stack.fetcher->fetch_page(*site, [&, site](workload::PageLoadResult r) {
      PageSample s;
      s.pt = stack.name();
      s.site = site->hostname;
      s.rep = rep;
      s.speed_index_s = workload::speed_index(*site, r);
      s.result = std::move(r);
      samples.push_back(std::move(s));
      if (++rep >= opts_.website_reps) {
        rep = 0;
        ++site_idx;
      }
      running = false;
      loop.schedule(opts_.think_gap, [&] { start_next(); });
    });
  };

  start_next();
  loop.run_until_done([&] { return finished && !running; });
  return samples;
}

std::vector<FileSample> Campaign::run_file_downloads(
    PtStack& stack, const std::vector<std::size_t>& sizes) {
  std::vector<FileSample> samples;
  std::size_t size_idx = 0;
  int rep = 0;
  bool running = false;
  bool finished = sizes.empty();
  sim::EventLoop& loop = scenario_->loop();

  std::function<void()> start_next = [&]() {
    if (size_idx >= sizes.size()) {
      finished = true;
      return;
    }
    // Every attempt gets a fresh circuit: bulk transfers regularly outlive
    // tunnels, and the paper retried from scratch.
    if (opts_.rotate_guard_per_site && stack.rotate_guard)
      stack.rotate_guard();
    stack.new_identity();
    running = true;
    std::size_t size = sizes[size_idx];
    std::string target = "/" + workload::file_target_name(size);
    stack.fetcher->fetch(
        "files.example", target, opts_.file_timeout,
        [&, size](workload::FetchResult r) {
          FileSample s;
          s.pt = stack.name();
          s.size_bytes = size;
          s.rep = rep;
          s.result = std::move(r);
          samples.push_back(std::move(s));
          if (++rep >= opts_.file_reps) {
            rep = 0;
            ++size_idx;
          }
          running = false;
          loop.schedule(opts_.think_gap, [&] { start_next(); });
        });
  };

  start_next();
  loop.run_until_done([&] { return finished && !running; });
  return samples;
}

std::vector<ReliabilitySample> Campaign::run_reliability(
    PtStack& stack, const std::vector<std::size_t>& sizes, RetryPolicy retry) {
  std::vector<ReliabilitySample> samples;
  std::size_t size_idx = 0;
  int rep = 0;
  int attempt = 0;
  bool running = false;
  bool finished = sizes.empty();
  sim::EventLoop& loop = scenario_->loop();

  std::function<void()> start_next = [&]() {
    if (size_idx >= sizes.size()) {
      finished = true;
      return;
    }
    // Every attempt — first try or retry — runs over a fresh circuit,
    // matching the paper's from-scratch retries.
    if (opts_.rotate_guard_per_site && stack.rotate_guard)
      stack.rotate_guard();
    stack.new_identity();
    running = true;
    std::size_t size = sizes[size_idx];
    std::string target = "/" + workload::file_target_name(size);
    stack.fetcher->fetch(
        "files.example", target, opts_.file_timeout,
        [&, size](workload::FetchResult r) {
          ++attempt;
          DownloadOutcome outcome = classify(r);
          bool retryable = outcome == DownloadOutcome::kFailed ||
                           (retry.retry_on_partial &&
                            outcome == DownloadOutcome::kPartial);
          running = false;
          if (retryable && attempt <= retry.max_retries) {
            loop.schedule(retry.backoff, [&] { start_next(); });
            return;
          }
          ReliabilitySample s;
          s.pt = stack.name();
          s.size_bytes = size;
          s.rep = rep;
          s.attempts = attempt;
          s.outcome = outcome;
          s.result = std::move(r);
          samples.push_back(std::move(s));
          attempt = 0;
          if (++rep >= opts_.file_reps) {
            rep = 0;
            ++size_idx;
          }
          loop.schedule(opts_.think_gap, [&] { start_next(); });
        });
  };

  start_next();
  loop.run_until_done([&] { return finished && !running; });
  return samples;
}

OutcomeCounts count_outcomes(const std::vector<ReliabilitySample>& xs) {
  OutcomeCounts c;
  for (const ReliabilitySample& s : xs) {
    switch (s.outcome) {
      case DownloadOutcome::kComplete: ++c.complete; break;
      case DownloadOutcome::kPartial: ++c.partial; break;
      case DownloadOutcome::kFailed: ++c.failed; break;
    }
  }
  return c;
}

std::vector<double> elapsed_seconds(const std::vector<WebsiteSample>& xs) {
  std::vector<double> out;
  for (const auto& s : xs)
    if (s.result.success) out.push_back(s.result.elapsed());
  return out;
}

std::vector<double> ttfb_seconds(const std::vector<WebsiteSample>& xs) {
  std::vector<double> out;
  for (const auto& s : xs)
    if (s.result.ttfb() >= 0) out.push_back(s.result.ttfb());
  return out;
}

std::vector<double> load_seconds(const std::vector<PageSample>& xs) {
  std::vector<double> out;
  for (const auto& s : xs)
    if (s.result.success) out.push_back(s.result.load_time_s);
  return out;
}

std::vector<double> per_site_means(const std::vector<WebsiteSample>& xs) {
  std::map<std::string, std::pair<double, int>> acc;
  for (const auto& s : xs) {
    if (!s.result.success) continue;
    auto& slot = acc[s.site];
    slot.first += s.result.elapsed();
    slot.second += 1;
  }
  std::vector<double> out;
  out.reserve(acc.size());
  for (const auto& [site, slot] : acc)
    out.push_back(slot.first / slot.second);
  return out;
}

}  // namespace ptperf
