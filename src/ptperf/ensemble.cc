#include "ptperf/ensemble.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"
#include "stats/descriptive.h"
#include "stats/ttest.h"

namespace ptperf {

namespace ensemble {

Estimate summarize(const std::vector<double>& per_rep) {
  Estimate e;
  e.repeats = per_rep.size();
  if (per_rep.empty()) return e;
  stats::Welford w;
  e.min = per_rep.front();
  e.max = per_rep.front();
  for (double x : per_rep) {
    w.add(x);
    e.min = std::min(e.min, x);
    e.max = std::max(e.max, x);
  }
  e.mean = w.mean();
  e.stddev = w.stddev();
  e.ci_lo = e.ci_hi = e.mean;
  if (per_rep.size() >= 2 && e.stddev > 0) {
    double n = static_cast<double>(per_rep.size());
    double crit = stats::student_t_critical(n - 1, 0.95);
    double half = crit * e.stddev / std::sqrt(n);
    e.ci_lo = e.mean - half;
    e.ci_hi = e.mean + half;
  }
  return e;
}

}  // namespace ensemble

std::uint64_t repeat_seed(std::uint64_t base_seed, int repeat) {
  if (repeat <= 0) return base_seed;
  std::string label = "repeat/" + std::to_string(repeat);
  return sim::Rng(base_seed).fork(label).next_u64();
}

EnsembleCampaign::EnsembleCampaign(EnsembleCampaignConfig cfg)
    : cfg_(std::move(cfg)) {}

std::uint64_t EnsembleCampaign::total_injected_faults() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : fault_counts_) total += c;
  return total;
}

/// Runs `run(engine)` once per repetition, each against a ShardedCampaign
/// whose scenario seed is the repetition's fork. Repetitions execute in
/// order; each one parallelizes internally over base.jobs, so wall time
/// scales like repeats x (single campaign) while every repetition stays
/// individually jobs-independent.
template <typename Sample, typename Run>
EnsembleRuns<Sample> EnsembleCampaign::run_reps(const Run& run) {
  EnsembleRuns<Sample> out;
  int n = repeats();
  out.reps.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    ShardedCampaignConfig sc = cfg_.base;
    sc.scenario.seed = repeat_seed(cfg_.base.scenario.seed, r);
    // The recorder observes the base campaign only: repetition 0's trace
    // is what --trace wrote before the ensemble layer existed, and extra
    // repetitions never grow (or reorder) the capture.
    if (r > 0) sc.trace_categories = 0;
    ShardedCampaign engine(sc);
    out.reps.push_back(run(engine));
    for (const ShardTiming& t : engine.timings()) timings_.push_back(t);
    if (r == 0) {
      for (const trace::ShardTrace& tr : engine.traces())
        traces_.push_back(tr);
    }
    for (std::size_t k = 0; k < fault_counts_.size(); ++k)
      fault_counts_[k] += engine.injected_faults(static_cast<fault::FaultKind>(k));
  }
  return out;
}

EnsembleRuns<WebsiteSample> EnsembleCampaign::run_website_curl(
    const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites) {
  return run_reps<WebsiteSample>([&](ShardedCampaign& engine) {
    return engine.run_website_curl(pts, sites);
  });
}

EnsembleRuns<PageSample> EnsembleCampaign::run_website_selenium(
    const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites) {
  return run_reps<PageSample>([&](ShardedCampaign& engine) {
    return engine.run_website_selenium(pts, sites);
  });
}

EnsembleRuns<FileSample> EnsembleCampaign::run_file_downloads(
    const std::vector<std::optional<PtId>>& pts,
    const std::vector<std::size_t>& sizes) {
  return run_reps<FileSample>([&](ShardedCampaign& engine) {
    return engine.run_file_downloads(pts, sizes);
  });
}

EnsembleRuns<ReliabilitySample> EnsembleCampaign::run_reliability(
    const std::vector<std::optional<PtId>>& pts,
    const std::vector<std::size_t>& sizes, RetryPolicy retry) {
  return run_reps<ReliabilitySample>([&](ShardedCampaign& engine) {
    return engine.run_reliability(pts, sizes, retry);
  });
}

std::vector<population::Trajectory> EnsembleCampaign::run_population(
    const population::PopulationConfig& pcfg) {
  std::vector<population::Trajectory> out;
  int n = repeats();
  out.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    ShardedCampaignConfig sc = cfg_.base;
    sc.scenario.seed = repeat_seed(cfg_.base.scenario.seed, r);
    if (r > 0) sc.trace_categories = 0;
    ShardedCampaign engine(sc);
    out.push_back(engine.run_population(pcfg));
    for (const ShardTiming& t : engine.timings()) timings_.push_back(t);
  }
  return out;
}

EnsembleRuns<OverheadSample> EnsembleCampaign::run_overhead(
    const std::vector<PtId>& pts, const SiteSelection& sites) {
  return run_reps<OverheadSample>([&](ShardedCampaign& engine) {
    return engine.run_overhead(pts, sites);
  });
}

}  // namespace ptperf
