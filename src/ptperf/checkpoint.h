// Checkpoint/resume for long-running campaigns. A Store owns one snapshot
// file under a checkpoint directory and accumulates completed *shard
// units* — the serialized samples, timing, and fault counters of one shard
// of one campaign — keyed by (campaign index, shard index). The sharded
// engine records a unit whenever a shard completes and skips any unit the
// snapshot already holds, so a killed run resumed from its snapshot
// replays only the missing shards and merges to byte-identical output
// (the merge is by plan position, never by completion order).
//
// Snapshot layout (docs/CHECKPOINTING.md):
//
//   u32 magic "PTCK" | u32 version
//   fingerprint: figure id, seed, scale, jobs, repeats, flags
//   campaign cursor: per-campaign ShardPlan hashes, in begin order
//   units: (campaign, shard, payload blob), sorted by key
//   u64 FNV-1a checksum over everything above
//
// The fingerprint pins what a resume is allowed to continue: figure,
// seed, scale, repeats, and figure-specific flags must match exactly
// (mismatch is a hard Error — resuming a --seed 2 run from a --seed 1
// snapshot would silently mix worlds). `jobs` is recorded for provenance
// but deliberately NOT validated: output is jobs-independent by the
// engine's core contract, so resuming on a different machine width is
// safe and supported. The campaign cursor doubles as the ensemble
// repetition cursor — every repetition is one campaign whose plan hash
// covers its forked shard seeds, so a stale or reordered repetition can
// never satisfy begin_campaign().
//
// Writes are atomic (temp file + rename) and happen at shard-completion
// boundaries, every `every` completed units; a crash leaves either the
// previous snapshot or the new one, never a torn file. Loads are fully
// validated — magic, version, checksum, bounds-checked parse — so a
// truncated or bit-flipped snapshot is rejected with a clear Error,
// never UB.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ptperf/parallel.h"
#include "util/codec.h"

namespace ptperf::checkpoint {

/// Any checkpoint failure: unreadable/corrupt/truncated snapshot,
/// fingerprint or plan mismatch on resume, short write.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Identity of the run a snapshot belongs to. All fields except `jobs`
/// must match exactly on resume (see file comment).
struct Fingerprint {
  std::string figure;      // e.g. "fig5"
  std::uint64_t seed = 0;  // campaign base seed
  double scale = 1;        // workload scale factor (bit-exact compare)
  int jobs = 1;            // recorded for provenance only, not validated
  int repeats = 1;         // ensemble repetition count
  std::string flags;       // figure-specific knobs, e.g. "faults=paper"
};

struct Options {
  std::string dir;         // checkpoint directory (created if missing)
  std::size_t every = 1;   // snapshot write cadence, in completed units
  bool resume = false;     // load + validate an existing snapshot
};

/// Stable hash of a ShardPlan's full decomposition (PT names, item
/// slices, chunk ordinals, forked seeds). Recorded per campaign so a
/// resume against a differently-planned run is refused even when the
/// coarse fingerprint fields happen to match.
std::uint64_t plan_hash(const ShardPlan& plan);

class Store {
 public:
  /// Creates the checkpoint directory if needed. With opts.resume, loads
  /// and validates the existing snapshot (Error if missing or invalid);
  /// without it, starts empty and overwrites any stale snapshot on the
  /// first write.
  Store(Options opts, Fingerprint fp);

  const Fingerprint& fingerprint() const { return fp_; }
  bool resumed() const { return resumed_; }
  std::string path() const;
  std::size_t unit_count() const;

  /// Registers the next campaign in run order and returns its index. On a
  /// resumed store the plan hash must match the recorded one for that
  /// position (Error otherwise) — this is the repetition cursor check.
  int begin_campaign(std::uint64_t plan);

  /// The recorded payload for a completed unit, or nullopt if the shard
  /// still has to run.
  std::optional<util::Bytes> completed(int campaign, std::size_t shard) const;

  /// Records a completed unit. Thread-safe — shards complete on pool
  /// threads. Persists a snapshot every `opts.every` new units.
  void record(int campaign, std::size_t shard, util::Bytes payload);

  /// Persists a snapshot now (end-of-campaign / end-of-window barrier).
  void flush();

  /// Test hook for the crash-equivalence suite: exactly `units` more
  /// record() calls are persisted, then the store behaves as if the
  /// process died — every later record() and flush() is dropped. The
  /// in-process run completes normally while the snapshot is frozen at
  /// the kill point, which is indistinguishable, for resume purposes,
  /// from a SIGKILL between shard boundaries.
  void simulate_crash_after(std::size_t units);

  static constexpr std::string_view kSnapshotFile = "snapshot.ptck";

 private:
  util::Bytes serialize_locked() const;
  void write_snapshot_locked();
  void load_snapshot();

  Options opts_;
  Fingerprint fp_;
  bool resumed_ = false;
  std::size_t next_campaign_ = 0;
  std::vector<std::uint64_t> plan_hashes_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, util::Bytes> units_;
  std::size_t since_write_ = 0;
  bool crash_armed_ = false;
  std::size_t crash_budget_ = 0;  // records left before the simulated kill
  bool dead_ = false;
  mutable std::mutex mu_;
};

/// --- shard-unit payload codec ---------------------------------------
/// One overload pair per campaign sample type; encode_unit/decode_unit
/// wrap a whole shard result (samples + timing + fault counters). All
/// decoders validate range invariants and reject trailing bytes.

using FaultCounts =
    std::array<std::uint64_t, static_cast<std::size_t>(fault::FaultKind::kCount_)>;

void write_sample(util::CodecWriter& w, const workload::FetchResult& r);
void read_sample(util::CodecReader& r, workload::FetchResult& out);
void write_sample(util::CodecWriter& w, const WebsiteSample& s);
void read_sample(util::CodecReader& r, WebsiteSample& out);
void write_sample(util::CodecWriter& w, const PageSample& s);
void read_sample(util::CodecReader& r, PageSample& out);
void write_sample(util::CodecWriter& w, const FileSample& s);
void read_sample(util::CodecReader& r, FileSample& out);
void write_sample(util::CodecWriter& w, const ReliabilitySample& s);
void read_sample(util::CodecReader& r, ReliabilitySample& out);
void write_sample(util::CodecWriter& w, const OverheadSample& s);
void read_sample(util::CodecReader& r, OverheadSample& out);

void write_timing(util::CodecWriter& w, const ShardTiming& t);
void read_timing(util::CodecReader& r, ShardTiming& out);

template <typename Sample>
void encode_unit(util::CodecWriter& w, const std::vector<Sample>& samples,
                 const ShardTiming& timing, const FaultCounts& faults) {
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (const Sample& s : samples) write_sample(w, s);
  write_timing(w, timing);
  w.u32(static_cast<std::uint32_t>(faults.size()));
  for (std::uint64_t c : faults) w.u64(c);
}

template <typename Sample>
void decode_unit(util::CodecReader& r, std::vector<Sample>& samples,
                 ShardTiming& timing, FaultCounts& faults) {
  std::uint32_t n = r.u32("unit.sample_count");
  samples.clear();
  samples.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) {
    Sample s{};
    read_sample(r, s);
    samples.push_back(std::move(s));
  }
  read_timing(r, timing);
  std::uint32_t kinds = r.u32("unit.fault_kinds");
  if (kinds != faults.size()) {
    throw util::CodecError("corrupt unit: fault-kind count " +
                           std::to_string(kinds) + " != " +
                           std::to_string(faults.size()));
  }
  for (std::uint64_t& c : faults) c = r.u64("unit.fault_count");
  r.expect_end("shard unit");
}

}  // namespace ptperf::checkpoint
