// Ensemble campaign layer: N independent repetitions of a sharded
// campaign, reduced to distribution summaries instead of single-seed point
// estimates. One seed per figure is exactly the methodological trap Jansen
// et al. ("Once is Never Enough", PAPERS.md) identify in Tor measurement:
// conclusions drawn from a single trial routinely invert under resampling.
// An EnsembleCampaign replays the whole ShardedCampaign `repeats` times,
// each repetition in an independently sampled world — network AND corpus
// seeds forked via Rng::fork("repeat/<r>") — so every repetition is itself
// jobs-independent and individually reproducible, and the ensemble is a
// pure function of (base seed, repeats, plan). Repetition 0 runs on the
// base seed unchanged, which makes --repeats 1 byte-identical to a plain
// sharded run. See docs/STATISTICS.md for the seed-forking scheme, the
// estimator merge math, and how to read the CI / paired-power columns.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ptperf/parallel.h"

namespace ptperf {

namespace ensemble {

/// Distribution of one per-repetition estimator across the ensemble.
struct Estimate {
  std::size_t repeats = 0;
  double mean = 0;
  double stddev = 0;  // sample stddev across repetitions; 0 for n < 2
  double ci_lo = 0;   // 95% Student-t interval for the mean
  double ci_hi = 0;   // (collapses to the point estimate for n < 2)
  double min = 0;
  double max = 0;
};

/// mean / stddev / 95% t-CI / min / max of the per-repetition values.
/// Defined for every n: n == 0 is all zeros, n == 1 collapses the interval
/// to the single observation. Never returns NaN.
Estimate summarize(const std::vector<double>& per_rep);

}  // namespace ensemble

/// Scenario seed of repetition `repeat`. Repetition 0 IS the base campaign
/// (seed unchanged — the --repeats 1 byte-identity contract); repetition
/// r >= 1 is an independent stream forked as Rng::fork("repeat/<r>") off
/// the base seed, namespaced so adding repetitions never perturbs earlier
/// ones and each repetition's shard seeds fork off its own stream.
std::uint64_t repeat_seed(std::uint64_t base_seed, int repeat);

/// Per-repetition sample vectors: reps[r] holds repetition r's samples,
/// merged in plan order (byte-identical at any --jobs, per repetition).
template <typename Sample>
struct EnsembleRuns {
  std::vector<std::vector<Sample>> reps;

  /// Repetition 0 — the base campaign every single-run figure table is
  /// built from (== the whole ensemble under --repeats 1).
  const std::vector<Sample>& first() const { return reps.at(0); }
};

struct EnsembleCampaignConfig {
  /// The replicated world recipe. base.scenario.seed is the ensemble's
  /// base seed; each repetition overrides it with repeat_seed(base, r).
  /// When base.scenario.corpus_seed is 0 (the default) the corpus follows
  /// the repetition seed, so every repetition also measures a freshly
  /// sampled synthetic web — repetitions resample the corpus, not just
  /// the network, exactly like independent real-world trials.
  ShardedCampaignConfig base;
  /// Independent repetitions; 1 = a plain sharded campaign, byte-identical
  /// to constructing ShardedCampaign(base) directly.
  int repeats = 1;
};

/// Front end over ShardedCampaign that runs every campaign type N times in
/// independently seeded worlds and accumulates per-repetition results.
/// Timings and injected-fault counters aggregate over all repetitions in
/// repetition order; flight-recorder traces capture repetition 0 only (the
/// base campaign), so --trace output is unchanged by --repeats.
class EnsembleCampaign {
 public:
  explicit EnsembleCampaign(EnsembleCampaignConfig cfg);

  EnsembleRuns<WebsiteSample> run_website_curl(
      const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites);
  EnsembleRuns<PageSample> run_website_selenium(
      const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites);
  EnsembleRuns<FileSample> run_file_downloads(
      const std::vector<std::optional<PtId>>& pts,
      const std::vector<std::size_t>& sizes);
  EnsembleRuns<ReliabilitySample> run_reliability(
      const std::vector<std::optional<PtId>>& pts,
      const std::vector<std::size_t>& sizes, RetryPolicy retry = {});
  EnsembleRuns<OverheadSample> run_overhead(const std::vector<PtId>& pts,
                                            const SiteSelection& sites);

  /// Population-driven mode: one fleet trajectory per repetition, each on
  /// the repetition's forked seed (repetition 0 = the base seed, the
  /// --repeats 1 byte-identity contract). reps[r] is jobs-independent —
  /// cohort shards merge in plan order inside each repetition.
  std::vector<population::Trajectory> run_population(
      const population::PopulationConfig& pcfg);

  const EnsembleCampaignConfig& config() const { return cfg_; }
  int repeats() const { return cfg_.repeats < 1 ? 1 : cfg_.repeats; }

  /// Per-shard timings over every repetition, in (repetition, plan) order.
  const std::vector<ShardTiming>& timings() const { return timings_; }

  /// Repetition 0's flight-recorder captures (empty unless
  /// base.trace_categories is nonzero).
  const std::vector<trace::ShardTrace>& traces() const { return traces_; }

  /// Injected-fault counters summed over every repetition's shards.
  std::uint64_t injected_faults(fault::FaultKind kind) const {
    return fault_counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected_faults() const;

 private:
  template <typename Sample, typename Run>
  EnsembleRuns<Sample> run_reps(const Run& run);

  EnsembleCampaignConfig cfg_;
  std::vector<ShardTiming> timings_;
  std::vector<trace::ShardTrace> traces_;
  std::array<std::uint64_t, static_cast<std::size_t>(fault::FaultKind::kCount_)>
      fault_counts_{};
};

}  // namespace ptperf
