// Transport factory: stands up each of the 12 evaluated PTs inside a
// Scenario — bridges, CDN fronts, brokers, resolvers, proxy pools, IM
// relays — and returns a ready-to-measure client stack, handling the
// §4.1 hop-set differences (where the Tor client lives, which relay is
// the first hop, how the fetcher dials SOCKS).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pt/snowflake.h"
#include "pt/transport.h"
#include "ptperf/scenario.h"

namespace ptperf {

enum class PtId {
  kObfs4,
  kMeek,
  kSnowflake,
  kConjure,
  kPsiphon,
  kDnstt,
  kWebTunnel,
  kCamoufler,
  kCloak,
  kStegotorus,
  kMarionette,
  kShadowsocks,
};

std::vector<PtId> all_pt_ids();
std::string_view pt_id_name(PtId id);

/// Keeps one live circuit per client, rebuilding on death; experiments
/// call new_identity() to force a fresh circuit (the paper accessed each
/// website over a new circuit).
class CircuitPool : public std::enable_shared_from_this<CircuitPool> {
 public:
  CircuitPool(std::shared_ptr<tor::TorClient> client,
              tor::PathConstraints constraints);

  tor::TorSocksServer::CircuitProvider provider();
  void new_identity();
  /// Builds the circuit now (blocking in virtual time) so subsequent
  /// fetches measure stream time only — Tor keeps circuits pre-built.
  void warm(sim::EventLoop& loop);
  void set_constraints(tor::PathConstraints constraints);
  const std::optional<tor::TorCircuit>& current() const { return current_; }

 private:
  void get(std::function<void(std::optional<tor::TorCircuit>, std::string)> cb);

  std::shared_ptr<tor::TorClient> client_;
  tor::PathConstraints constraints_;
  std::optional<tor::TorCircuit> current_;
};

/// A measurement-ready client: vanilla Tor when `transport` is null.
struct PtStack {
  std::optional<pt::TransportInfo> info;  // nullopt => vanilla Tor
  std::shared_ptr<pt::Transport> transport;
  std::shared_ptr<tor::TorClient> tor;
  std::shared_ptr<tor::TorSocksServer> socks;
  std::shared_ptr<CircuitPool> pool;  // null for set-3 transports
  std::shared_ptr<workload::Fetcher> fetcher;
  /// Raw SOCKS dialer behind the fetcher (streaming / custom clients).
  workload::Fetcher::SocksDialer dialer;
  /// Retire the current circuit (next fetch builds a fresh one).
  std::function<void()> new_identity;
  /// Re-sample the persisted guard (campaigns spanning months see many
  /// guards; per-site rotation reproduces the population average).
  std::function<void()> rotate_guard;
  /// Non-null for snowflake: load-regime control (§5.3).
  pt::SnowflakeTransport* snowflake = nullptr;

  std::string name() const { return info ? info->name : "tor"; }
  bool supports_selenium() const {
    return !info || info->supports_parallel_streams;
  }
};

/// Transport factory configuration.
struct TransportFactoryOptions {
  net::Region pt_server_region = net::Region::kFrankfurt;
  std::size_t snowflake_proxies = 8;
};

class TransportFactory {
 public:
  explicit TransportFactory(Scenario& scenario,
                            TransportFactoryOptions opts = {});

  /// Creates the transport plus its client stack by looking the id up in
  /// the PtId-keyed registry. Each call creates fresh infrastructure
  /// (hosts, bridges); create each PT once per scenario.
  PtStack create(PtId id);

  /// Vanilla Tor stack for baselines.
  PtStack create_vanilla();

 private:
  /// One registry row: canonical name plus the builder that stands up the
  /// PT's infrastructure and wraps it into a measurement-ready stack.
  struct Registration {
    PtId id;
    const char* name;
    PtStack (TransportFactory::*build)(const std::string& tag);
  };

  /// All 12 evaluated PTs in canonical evaluation order. This table is
  /// the single source of truth for all_pt_ids() and pt_id_name().
  static const std::array<Registration, 12>& registry();
  static const Registration& registration(PtId id);
  friend std::vector<PtId> all_pt_ids();
  friend std::string_view pt_id_name(PtId id);

  PtStack build_obfs4(const std::string& tag);
  PtStack build_meek(const std::string& tag);
  PtStack build_snowflake(const std::string& tag);
  PtStack build_conjure(const std::string& tag);
  PtStack build_psiphon(const std::string& tag);
  PtStack build_dnstt(const std::string& tag);
  PtStack build_webtunnel(const std::string& tag);
  PtStack build_camoufler(const std::string& tag);
  PtStack build_cloak(const std::string& tag);
  PtStack build_stegotorus(const std::string& tag);
  PtStack build_marionette(const std::string& tag);
  PtStack build_shadowsocks(const std::string& tag);

  PtStack wrap_first_hop_transport(std::shared_ptr<pt::Transport> transport);
  PtStack wrap_socks_tunnel_transport(
      std::shared_ptr<pt::Transport> transport, net::HostId server_host,
      const std::string& socks_service);

  Scenario* scenario_;
  TransportFactoryOptions opts_;
  int counter_ = 0;
};

}  // namespace ptperf
