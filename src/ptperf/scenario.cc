#include "ptperf/scenario.h"

#include "net/resource.h"

namespace ptperf {

net::HostTraits client_traits(bool wireless) {
  net::HostTraits t;
  if (wireless) {
    // WiFi: same order-of-magnitude rate, noticeably more jitter. The
    // paper found no trend change (§4.7); the model matches by only
    // perturbing the access link, not the path.
    t.up_mbps = 80;
    t.down_mbps = 120;
    t.jitter_ms = 6.0;
  } else {
    t.up_mbps = 300;
    t.down_mbps = 300;
    t.jitter_ms = 1.0;
  }
  return t;
}

Scenario::Scenario(ScenarioConfig config)
    : config_(config),
      rng_(config.seed),
      net_(std::make_unique<net::Network>(loop_, sim::Rng(config.seed ^ 0x9e3779b9),
                                          net::Topology())),
      tranco_(workload::Corpus::generate(
          workload::CorpusKind::kTranco, config.tranco_sites,
          sim::Rng(config.corpus_seed ? config.corpus_seed : config.seed)
              .fork("tranco"))),
      cbl_(workload::Corpus::generate(
          workload::CorpusKind::kCbl, config.cbl_sites,
          sim::Rng(config.corpus_seed ? config.corpus_seed : config.seed)
              .fork("cbl"))) {
  sim::Rng dir_rng = rng_.fork("consensus");
  directory_ = tor::generate_consensus(*net_, dir_rng, config.consensus);

  // Stand up every relay.
  for (const tor::RelayDescriptor& d : directory_.consensus.relays) {
    auto relay = std::make_shared<tor::Relay>(
        *net_, directory_.consensus, d.index, directory_.onion_private[d.index],
        rng_.fork("relay" + std::to_string(d.index)));
    relay->set_exit_resolver(
        [this](const std::string& host) { return resolve_exit(host); });
    relay->start();
    relays_.push_back(relay);
  }

  client_host_ = net_->add_host("client", config.client_region,
                                client_traits(config.wireless_client));

  net::HostTraits web_traits;
  web_traits.up_mbps = 2000;
  web_traits.down_mbps = 2000;
  web_traits.background_load = 0.05;
  web_traits.jitter_ms = 0.5;
  web_host_ = net_->add_host("webserver", config.web_region, web_traits);
  web_server_ =
      std::make_shared<workload::WebServer>(*net_, web_host_, &tranco_, &cbl_);
  web_server_->start();
}

trace::Recorder& Scenario::enable_trace(unsigned categories) {
  trace_.reset();  // detach the old recorder before attaching the new one
  trace_ = std::make_unique<trace::Recorder>(loop_, categories);
  return *trace_;
}

fault::FaultInjector& Scenario::install_fault_plan(fault::FaultPlan plan) {
  fault_ = std::make_unique<fault::FaultInjector>(
      std::move(plan), sim::Rng(config_.seed).fork("fault-injection"));
  net_->set_fault_injector(fault_.get());
  return *fault_;
}

std::optional<net::HostId> Scenario::resolve_exit(
    const std::string& hostname) const {
  if (hostname == "files.example" || tranco_.find(hostname) ||
      cbl_.find(hostname)) {
    return web_host_;
  }
  auto it = exit_aliases_.find(hostname);
  if (it != exit_aliases_.end()) return it->second;
  return std::nullopt;
}

tor::RelayIndex Scenario::add_bridge(net::Region region,
                                     double background_load, double mbps,
                                     double proc_ms) {
  auto index = static_cast<tor::RelayIndex>(directory_.consensus.relays.size());

  tor::RelayDescriptor d;
  d.index = index;
  d.nickname = "bridge" + std::to_string(index);
  d.region = region;
  d.bandwidth_weight = mbps;
  d.flags = tor::kFlagFast | tor::kFlagStable | tor::kFlagGuard |
            tor::kFlagBridge;

  net::HostTraits traits;
  traits.up_mbps = mbps;
  traits.down_mbps = mbps;
  traits.background_load = background_load;
  traits.jitter_ms = 1.0;
  traits.proc_ms = proc_ms;
  d.host = net_->add_host(d.nickname, region, traits);
  // Bridge saturation registers as a contended pool (inert until a
  // population scenario drives it; the static background_load above is
  // the bridge's non-PT tenancy).
  net_->add_resource(net::ContendedResourceSpec{
      "bridge/" + d.nickname, std::vector<net::HostId>{d.host},
      /*capacity_sessions=*/25.0e3});

  sim::Rng key_rng = rng_.fork("bridge-key" + std::to_string(index));
  crypto::X25519Key raw;
  key_rng.fill_bytes(raw.data(), raw.size());
  crypto::X25519Key priv = crypto::x25519_clamp(raw);
  if (directory_.consensus.handshake_mode == tor::HandshakeMode::kRealDh) {
    d.onion_public = crypto::x25519_base(priv);
  } else {
    auto h = crypto::Sha256::digest(util::BytesView(priv.data(), priv.size()));
    std::copy(h.begin(), h.end(), d.onion_public.begin());
  }

  directory_.consensus.relays.push_back(d);
  directory_.onion_private.push_back(priv);

  auto relay = std::make_shared<tor::Relay>(*net_, directory_.consensus, index,
                                            priv, rng_.fork(d.nickname));
  relay->set_exit_resolver(
      [this](const std::string& host) { return resolve_exit(host); });
  relay->start();
  relays_.push_back(relay);
  return index;
}

net::HostId Scenario::add_client_host(net::Region region, bool wireless,
                                      const std::string& name) {
  return net_->add_host(name, region, client_traits(wireless));
}

net::HostId Scenario::add_infra_host(const std::string& name,
                                     net::Region region, double mbps,
                                     double load) {
  net::HostTraits traits;
  traits.up_mbps = mbps;
  traits.down_mbps = mbps;
  traits.background_load = load;
  traits.jitter_ms = 1.0;
  return net_->add_host(name, region, traits);
}

std::shared_ptr<tor::TorClient> Scenario::make_tor_client(net::HostId host) {
  return std::make_shared<tor::TorClient>(
      *net_, host, directory_.consensus,
      rng_.fork("torclient" + std::to_string(host)));
}

workload::Fetcher::SocksDialer Scenario::make_loopback_dialer(
    net::HostId host, const std::string& socks_service) {
  auto* network = net_.get();
  return [network, host, socks_service](
             std::function<void(net::ChannelPtr)> ok,
             std::function<void(std::string)> err) {
    network->connect(
        host, host, socks_service,
        [ok](net::Pipe pipe) { ok(net::wrap_pipe(std::move(pipe))); },
        [err](std::string e) {
          if (err) err(std::move(e));
        });
  };
}

std::shared_ptr<workload::Fetcher> Scenario::make_loopback_fetcher(
    net::HostId host, const std::string& socks_service) {
  return std::make_shared<workload::Fetcher>(
      loop_, make_loopback_dialer(host, socks_service));
}

ClientStack Scenario::make_vanilla_stack(const std::string& socks_service) {
  ClientStack stack;
  stack.tor = make_tor_client(client_host_);
  stack.socks = std::make_shared<tor::TorSocksServer>(stack.tor, socks_service);
  stack.socks->start();
  stack.fetcher = make_loopback_fetcher(client_host_, socks_service);
  return stack;
}

}  // namespace ptperf
