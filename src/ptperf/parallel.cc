#include "ptperf/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "ptperf/checkpoint.h"

namespace ptperf {

std::uint64_t shard_seed(std::uint64_t base_seed, std::string_view pt_name,
                         std::size_t chunk_index) {
  std::string label = "shard/";
  label += pt_name;
  label += "/";
  label += std::to_string(chunk_index);
  return sim::Rng(base_seed).fork(label).next_u64();
}

ShardPlan ShardPlan::build(std::uint64_t base_seed,
                           const std::vector<std::optional<PtId>>& pts,
                           std::size_t item_count,
                           std::size_t items_per_shard) {
  ShardPlan plan;
  std::size_t chunk = items_per_shard == 0 ? item_count : items_per_shard;
  for (const std::optional<PtId>& pt : pts) {
    std::string name = pt ? std::string(pt_id_name(*pt)) : "tor";
    std::size_t chunk_index = 0;
    std::size_t begin = 0;
    do {
      ShardSpec spec;
      spec.index = plan.shards_.size();
      spec.pt = pt;
      spec.pt_name = name;
      spec.item_begin = begin;
      spec.item_end = std::min(item_count, begin + chunk);
      spec.chunk_index = chunk_index;
      spec.seed = shard_seed(base_seed, name, chunk_index);
      plan.shards_.push_back(std::move(spec));
      ++chunk_index;
      begin += chunk;
    } while (begin < item_count);
  }
  return plan;
}

ParallelExecutor::ParallelExecutor(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

int ParallelExecutor::hardware_jobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelExecutor::for_each(std::size_t n,
                                const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::size_t pool_size =
      std::min(n, static_cast<std::size_t>(jobs_));
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

ShardedCampaign::ShardedCampaign(ShardedCampaignConfig cfg)
    : cfg_(std::move(cfg)) {}

std::vector<std::optional<PtId>> ShardedCampaign::with_vanilla(
    const std::vector<PtId>& pts) {
  std::vector<std::optional<PtId>> out;
  out.reserve(pts.size() + 1);
  out.emplace_back(std::nullopt);
  for (PtId id : pts) out.emplace_back(id);
  return out;
}

std::uint64_t ShardedCampaign::total_injected_faults() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : fault_counts_) total += c;
  return total;
}

/// Runs `body(spec, scenario, campaign, stack)` for every shard of `plan`
/// across the pool, then merges per-shard samples, timings and fault
/// counters strictly in plan order. Every mutable slot is indexed by the
/// shard's plan position and touched by exactly one task; the pool join is
/// the only synchronization the merge needs.
///
/// With a checkpoint store attached, shards the snapshot already holds are
/// decoded straight into their merge slots and never re-run; freshly
/// completed shards are recorded back. Because both paths fill the same
/// plan-position slots, a resumed run merges to byte-identical output.
template <typename Sample, typename Body>
std::vector<Sample> ShardedCampaign::run_plan(const ShardPlan& plan,
                                              const Body& body) {
  const std::vector<ShardSpec>& shards = plan.shards();
  constexpr auto kFaultKinds =
      static_cast<std::size_t>(fault::FaultKind::kCount_);
  std::vector<std::vector<Sample>> per_shard(shards.size());
  std::vector<ShardTiming> timings(shards.size());
  std::vector<std::array<std::uint64_t, kFaultKinds>> faults(
      shards.size(), std::array<std::uint64_t, kFaultKinds>{});
  std::vector<trace::ShardTrace> traces(shards.size());

  checkpoint::Store* store = cfg_.checkpoint.get();
  int campaign_index =
      store ? store->begin_campaign(checkpoint::plan_hash(plan)) : -1;
  std::vector<std::size_t> pending;
  pending.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (store) {
      if (std::optional<util::Bytes> unit = store->completed(campaign_index, i)) {
        util::CodecReader r(*unit);
        checkpoint::decode_unit(r, per_shard[i], timings[i], faults[i]);
        continue;
      }
    }
    pending.push_back(i);
  }

  ParallelExecutor executor(cfg_.jobs);
  executor.for_each(pending.size(), [&](std::size_t slot) {
    std::size_t i = pending[slot];
    const ShardSpec& spec = shards[i];
    std::int64_t wall_start = sim::wall_now_us();

    ScenarioConfig sc = cfg_.scenario;
    if (sc.corpus_seed == 0) sc.corpus_seed = cfg_.scenario.seed;
    sc.seed = spec.seed;
    Scenario scenario(sc);
    if (cfg_.trace_categories != 0)
      scenario.enable_trace(cfg_.trace_categories);
    if (cfg_.configure_scenario) cfg_.configure_scenario(scenario);
    TransportFactory factory(scenario, cfg_.factory);
    PtStack stack =
        spec.pt ? factory.create(*spec.pt) : factory.create_vanilla();
    if (cfg_.configure_stack) cfg_.configure_stack(scenario, stack);
    Campaign campaign(scenario, cfg_.campaign);

    per_shard[i] = body(spec, scenario, campaign, stack);

    ShardTiming t;
    t.shard = spec.index;
    t.pt = spec.pt_name;
    t.items = spec.item_end - spec.item_begin;
    t.virtual_seconds = sim::seconds_since_start(scenario.loop().now());
    t.wall_us = sim::wall_now_us() - wall_start;
    timings[i] = std::move(t);

    if (fault::FaultInjector* injector = scenario.fault_injector()) {
      for (std::size_t k = 0; k < kFaultKinds; ++k)
        faults[i][k] = injector->injected(static_cast<fault::FaultKind>(k));
    }

    if (trace::Recorder* rec = scenario.trace_recorder()) {
      // Mirror injected-fault totals into the metrics registry so the
      // exported trace is self-contained.
      if (fault::FaultInjector* injector = scenario.fault_injector()) {
        for (std::size_t k = 0; k < kFaultKinds; ++k) {
          auto kind = static_cast<fault::FaultKind>(k);
          if (std::uint64_t c = injector->injected(kind); c > 0)
            rec->count(std::string("fault/") +
                           std::string(fault::fault_kind_name(kind)),
                       c);
        }
      }
      traces[i] = trace::ShardTrace{spec.index, spec.pt_name, rec->take()};
    }

    if (store) {
      util::CodecWriter w;
      checkpoint::encode_unit(w, per_shard[i], timings[i], faults[i]);
      store->record(campaign_index, i, w.take());
    }
  });

  std::vector<Sample> merged;
  std::size_t total = 0;
  for (const std::vector<Sample>& xs : per_shard) total += xs.size();
  merged.reserve(total);
  for (std::vector<Sample>& xs : per_shard) {
    for (Sample& s : xs) merged.push_back(std::move(s));
  }
  for (ShardTiming& t : timings) timings_.push_back(std::move(t));
  if (cfg_.trace_categories != 0) {
    for (trace::ShardTrace& tr : traces) traces_.push_back(std::move(tr));
  }
  for (const auto& shard_counts : faults) {
    for (std::size_t k = 0; k < kFaultKinds; ++k)
      fault_counts_[k] += shard_counts[k];
  }
  return merged;
}

namespace {

/// The shard's view of the campaign's site list: selection resolved in the
/// shard's own world (identical across shards — corpus_seed is pinned),
/// then sliced to the shard's chunk.
std::vector<const workload::Website*> shard_sites(const ShardSpec& spec,
                                                  Scenario& scenario,
                                                  const SiteSelection& sel) {
  auto sites =
      Campaign::merge(Campaign::take_sites(scenario.tranco(), sel.tranco),
                      Campaign::take_sites(scenario.cbl(), sel.cbl));
  std::size_t end = std::min(spec.item_end, sites.size());
  std::size_t begin = std::min(spec.item_begin, end);
  return {sites.begin() + static_cast<std::ptrdiff_t>(begin),
          sites.begin() + static_cast<std::ptrdiff_t>(end)};
}

std::vector<std::size_t> shard_sizes(const ShardSpec& spec,
                                     const std::vector<std::size_t>& sizes) {
  std::size_t end = std::min(spec.item_end, sizes.size());
  std::size_t begin = std::min(spec.item_begin, end);
  return {sizes.begin() + static_cast<std::ptrdiff_t>(begin),
          sizes.begin() + static_cast<std::ptrdiff_t>(end)};
}

}  // namespace

std::vector<WebsiteSample> ShardedCampaign::run_website_curl(
    const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites) {
  ShardPlan plan = ShardPlan::build(cfg_.scenario.seed, pts, sites.count(),
                                    cfg_.items_per_shard);
  return run_plan<WebsiteSample>(
      plan, [&sites](const ShardSpec& spec, Scenario& scenario,
                     Campaign& campaign, PtStack& stack) {
        return campaign.run_website_curl(stack,
                                         shard_sites(spec, scenario, sites));
      });
}

std::vector<PageSample> ShardedCampaign::run_website_selenium(
    const std::vector<std::optional<PtId>>& pts, const SiteSelection& sites) {
  ShardPlan plan = ShardPlan::build(cfg_.scenario.seed, pts, sites.count(),
                                    cfg_.items_per_shard);
  return run_plan<PageSample>(
      plan, [&sites](const ShardSpec& spec, Scenario& scenario,
                     Campaign& campaign, PtStack& stack) {
        return campaign.run_website_selenium(
            stack, shard_sites(spec, scenario, sites));
      });
}

std::vector<FileSample> ShardedCampaign::run_file_downloads(
    const std::vector<std::optional<PtId>>& pts,
    const std::vector<std::size_t>& sizes) {
  ShardPlan plan = ShardPlan::build(cfg_.scenario.seed, pts, sizes.size(),
                                    cfg_.items_per_shard);
  return run_plan<FileSample>(
      plan, [&sizes](const ShardSpec& spec, Scenario&, Campaign& campaign,
                     PtStack& stack) {
        return campaign.run_file_downloads(stack, shard_sizes(spec, sizes));
      });
}

std::vector<OverheadSample> ShardedCampaign::run_overhead(
    const std::vector<PtId>& pts, const SiteSelection& sites) {
  std::vector<std::optional<PtId>> plan_pts;
  plan_pts.reserve(pts.size());
  for (PtId id : pts) plan_pts.emplace_back(id);
  ShardPlan plan = ShardPlan::build(cfg_.scenario.seed, plan_pts,
                                    sites.count(), cfg_.items_per_shard);
  return run_plan<OverheadSample>(
      plan, [this, &sites](const ShardSpec& spec, Scenario& scenario,
                           Campaign&, PtStack& stack) {
        std::vector<OverheadSample> out;
        // The vanilla baseline lives in the shard's own world so both
        // stacks see identical relays, sites, and load.
        TransportFactory vanilla_factory(scenario, cfg_.factory);
        PtStack tor = vanilla_factory.create_vanilla();
        sim::EventLoop& loop = scenario.loop();
        tor::PathSelector sampler(scenario.consensus(),
                                  scenario.fork_rng("fig9-sampler"));

        auto fetch_once = [&loop](PtStack& s, const std::string& host) {
          double t = -1;
          bool done = false;
          s.fetcher->fetch(host, "/", sim::from_seconds(120),
                           [&](workload::FetchResult r) {
                             if (r.success) t = r.elapsed();
                             done = true;
                           });
          loop.run_until_done([&] { return done; });
          return t;
        };

        const pt::layer::LayerStack* layers = stack.transport->layer_stack();
        const pt::layer::StackAccounting* acct =
            layers ? layers->accounting().get() : nullptr;

        for (const workload::Website* site :
             shard_sites(spec, scenario, sites)) {
          // Same circuit for Tor and the PT at this site: identical first
          // hop (the PT's bridge when it has one, else a sampled guard)
          // and the same middle/exit pair.
          tor::Path p = sampler.select({});
          tor::PathConstraints constraints;
          constraints.entry = stack.transport->fixed_entry()
                                  ? stack.transport->fixed_entry()
                                  : std::optional<tor::RelayIndex>(p.entry);
          constraints.middle = p.middle;
          constraints.exit = p.exit;
          tor.pool->set_constraints(constraints);
          if (stack.pool) stack.pool->set_constraints(constraints);

          // Snapshot before the PT warms so the delta covers the site's
          // full PT share: transport connect, circuit build, and fetch.
          pt::layer::StackAccounting before;
          if (acct) before = *acct;

          tor.pool->warm(loop);
          if (stack.pool) stack.pool->warm(loop);

          OverheadSample s;
          s.pt = stack.name();
          s.site = site->hostname;
          s.tor_s = fetch_once(tor, site->hostname);
          s.pt_s = fetch_once(stack, site->hostname);
          if (acct) {
            s.payload_bytes = acct->payload_bytes - before.payload_bytes;
            s.handshake_bytes = acct->handshake_bytes - before.handshake_bytes;
            s.framing_bytes = acct->framing_bytes - before.framing_bytes;
            s.carrier_bytes = acct->carrier_bytes - before.carrier_bytes;
            s.wire_bytes = acct->wire_bytes - before.wire_bytes;
            s.handshake_rtts = acct->handshake_rtts - before.handshake_rtts;
          }
          out.push_back(std::move(s));
        }
        return out;
      });
}

population::Trajectory ShardedCampaign::run_population(
    population::PopulationConfig pcfg) {
  // The fleet rides the campaign's seed tree: the same --seed that drives
  // the measured worlds drives the demand that loads them.
  pcfg.seed = cfg_.scenario.seed;
  population::PopulationModel model(std::move(pcfg));

  std::size_t n = model.cohort_count();
  std::vector<population::CohortTrajectory> per_cohort(n);
  std::vector<ShardTiming> timings(n);

  ParallelExecutor executor(cfg_.jobs);
  executor.for_each(n, [&](std::size_t i) {
    std::int64_t wall_start = sim::wall_now_us();
    per_cohort[i] = model.simulate_cohort(i);

    ShardTiming t;
    t.shard = i;
    t.pt = "population/" + per_cohort[i].cohort;
    t.items = per_cohort[i].active.size();
    t.virtual_seconds = model.config().horizon_hours * 3600.0;
    t.wall_us = sim::wall_now_us() - wall_start;
    timings[i] = std::move(t);
  });

  for (ShardTiming& t : timings) timings_.push_back(std::move(t));
  return population::PopulationModel::merge(model.config(), per_cohort);
}

std::vector<ReliabilitySample> ShardedCampaign::run_reliability(
    const std::vector<std::optional<PtId>>& pts,
    const std::vector<std::size_t>& sizes, RetryPolicy retry) {
  ShardPlan plan = ShardPlan::build(cfg_.scenario.seed, pts, sizes.size(),
                                    cfg_.items_per_shard);
  return run_plan<ReliabilitySample>(
      plan, [&sizes, retry](const ShardSpec& spec, Scenario&,
                            Campaign& campaign, PtStack& stack) {
        return campaign.run_reliability(stack, shard_sizes(spec, sizes),
                                        retry);
      });
}

}  // namespace ptperf
