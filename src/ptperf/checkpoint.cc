#include "ptperf/checkpoint.h"

#include <cstdio>
#include <filesystem>

namespace ptperf::checkpoint {

namespace {

constexpr std::uint32_t kMagic = 0x5054434B;  // "PTCK"
constexpr std::uint32_t kVersion = 1;

/// The one sanctioned raw-file write path in src/ptperf (simlint's
/// checkpoint-io rule bans fopen/ofstream everywhere else in the
/// directory): serialize fully in memory, write a sibling temp file,
/// fsync-free rename into place. A crash at any point leaves either the
/// old snapshot or the new one — never a torn file.
void atomic_write_file(const std::string& path, util::BytesView data) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw Error("checkpoint: cannot open " + tmp);
  std::size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: cannot rename " + tmp + " to " + path);
  }
}

/// Whole-file read; returns nullopt when the file does not exist.
std::optional<util::Bytes> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  util::Bytes out;
  std::uint8_t buf[4096];
  for (;;) {
    std::size_t n = std::fread(buf, 1, sizeof buf, f);
    out.insert(out.end(), buf, buf + n);
    if (n < sizeof buf) break;
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw Error("checkpoint: cannot read " + path);
  return out;
}

void write_fingerprint(util::CodecWriter& w, const Fingerprint& fp) {
  w.str(fp.figure)
      .u64(fp.seed)
      .f64(fp.scale)
      .i64(fp.jobs)
      .i64(fp.repeats)
      .str(fp.flags);
}

Fingerprint read_fingerprint(util::CodecReader& r) {
  Fingerprint fp;
  fp.figure = r.str("fingerprint.figure");
  fp.seed = r.u64("fingerprint.seed");
  fp.scale = r.f64("fingerprint.scale");
  fp.jobs = static_cast<int>(r.i64("fingerprint.jobs"));
  fp.repeats = static_cast<int>(r.i64("fingerprint.repeats"));
  fp.flags = r.str("fingerprint.flags");
  return fp;
}

[[noreturn]] void refuse(const std::string& field, const std::string& have,
                         const std::string& want) {
  throw Error("checkpoint: fingerprint mismatch on " + field + ": snapshot " +
              "was taken with " + field + "=" + have + ", this run has " +
              field + "=" + want + " — refusing to resume");
}

/// Strict identity check for every field a resume must not change.
/// `jobs` is intentionally absent: shard merge order is plan order, so
/// the same snapshot resumes correctly at any pool width.
void validate_fingerprint(const Fingerprint& have, const Fingerprint& want) {
  if (have.figure != want.figure) refuse("figure", have.figure, want.figure);
  if (have.seed != want.seed)
    refuse("seed", std::to_string(have.seed), std::to_string(want.seed));
  if (std::bit_cast<std::uint64_t>(have.scale) !=
      std::bit_cast<std::uint64_t>(want.scale))
    refuse("scale", std::to_string(have.scale), std::to_string(want.scale));
  if (have.repeats != want.repeats)
    refuse("repeats", std::to_string(have.repeats),
           std::to_string(want.repeats));
  if (have.flags != want.flags) refuse("flags", have.flags, want.flags);
}

}  // namespace

std::uint64_t plan_hash(const ShardPlan& plan) {
  util::CodecWriter w;
  for (const ShardSpec& s : plan.shards()) {
    w.str(s.pt_name)
        .u64(s.item_begin)
        .u64(s.item_end)
        .u64(s.chunk_index)
        .u64(s.seed);
  }
  return util::fnv1a(w.view());
}

Store::Store(Options opts, Fingerprint fp)
    : opts_(std::move(opts)), fp_(std::move(fp)) {
  if (opts_.dir.empty()) throw Error("checkpoint: empty directory");
  if (opts_.every == 0) opts_.every = 1;
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  if (ec) throw Error("checkpoint: cannot create directory " + opts_.dir);
  if (opts_.resume) load_snapshot();
}

std::string Store::path() const {
  return opts_.dir + "/" + std::string(kSnapshotFile);
}

std::size_t Store::unit_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return units_.size();
}

int Store::begin_campaign(std::uint64_t plan) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t index = next_campaign_++;
  if (index < plan_hashes_.size()) {
    if (plan_hashes_[index] != plan) {
      throw Error("checkpoint: plan mismatch for campaign " +
                  std::to_string(index) +
                  " — the snapshot was taken from a differently-sharded "
                  "run; refusing to resume");
    }
  } else {
    plan_hashes_.push_back(plan);
  }
  return static_cast<int>(index);
}

std::optional<util::Bytes> Store::completed(int campaign,
                                            std::size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = units_.find({static_cast<std::uint32_t>(campaign),
                         static_cast<std::uint64_t>(shard)});
  if (it == units_.end()) return std::nullopt;
  return it->second;
}

void Store::record(int campaign, std::size_t shard, util::Bytes payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return;
  if (crash_armed_ && crash_budget_ == 0) {
    dead_ = true;
    return;
  }
  if (crash_armed_) --crash_budget_;
  units_[{static_cast<std::uint32_t>(campaign),
          static_cast<std::uint64_t>(shard)}] = std::move(payload);
  ++since_write_;
  if (since_write_ >= opts_.every || (crash_armed_ && crash_budget_ == 0)) {
    write_snapshot_locked();
  }
}

void Store::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return;
  write_snapshot_locked();
}

void Store::simulate_crash_after(std::size_t units) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_armed_ = true;
  crash_budget_ = units;
  if (units == 0) dead_ = true;
}

util::Bytes Store::serialize_locked() const {
  util::CodecWriter w(4096);
  w.u32(kMagic).u32(kVersion);
  write_fingerprint(w, fp_);
  w.u32(static_cast<std::uint32_t>(plan_hashes_.size()));
  for (std::uint64_t h : plan_hashes_) w.u64(h);
  w.u32(static_cast<std::uint32_t>(units_.size()));
  // std::map iterates in key order, so the serialized unit sequence is a
  // pure function of the completed set — two snapshots holding the same
  // units are byte-identical regardless of completion order.
  for (const auto& [key, payload] : units_) {
    w.u32(key.first).u64(key.second).blob(payload);
  }
  w.u64(util::fnv1a(w.view()));
  return w.take();
}

void Store::write_snapshot_locked() {
  atomic_write_file(path(), serialize_locked());
  since_write_ = 0;
}

void Store::load_snapshot() {
  std::optional<util::Bytes> raw = read_file(path());
  if (!raw) {
    throw Error("checkpoint: --resume but no snapshot at " + path());
  }
  if (raw->size() < 16) {
    throw Error("checkpoint: snapshot " + path() + " is truncated (" +
                std::to_string(raw->size()) + " bytes)");
  }
  util::BytesView body(raw->data(), raw->size() - 8);
  util::CodecReader trailer(
      util::BytesView(raw->data() + raw->size() - 8, 8));
  if (trailer.u64("checksum") != util::fnv1a(body)) {
    throw Error("checkpoint: snapshot " + path() +
                " failed its checksum — corrupt or torn file");
  }
  try {
    util::CodecReader r(body);
    if (r.u32("magic") != kMagic) {
      throw Error("checkpoint: " + path() + " is not a PTPerf snapshot");
    }
    if (std::uint32_t v = r.u32("version"); v != kVersion) {
      throw Error("checkpoint: snapshot version " + std::to_string(v) +
                  " unsupported (expected " + std::to_string(kVersion) + ")");
    }
    Fingerprint have = read_fingerprint(r);
    validate_fingerprint(have, fp_);
    std::uint32_t n_plans = r.u32("campaign_count");
    plan_hashes_.reserve(n_plans);
    for (std::uint32_t i = 0; i < n_plans; ++i)
      plan_hashes_.push_back(r.u64("plan_hash"));
    std::uint32_t n_units = r.u32("unit_count");
    for (std::uint32_t i = 0; i < n_units; ++i) {
      std::uint32_t campaign = r.u32("unit.campaign");
      std::uint64_t shard = r.u64("unit.shard");
      units_[{campaign, shard}] = r.blob("unit.payload");
    }
    r.expect_end("snapshot");
  } catch (const util::CodecError& e) {
    throw Error("checkpoint: snapshot " + path() + " is corrupt: " +
                e.what());
  }
  resumed_ = true;
}

// --- shard-unit payload codec ----------------------------------------

void write_sample(util::CodecWriter& w, const workload::FetchResult& r) {
  w.str(r.target)
      .f64(r.start_s)
      .f64(r.ttfb_s)
      .f64(r.complete_s)
      .u64(r.expected_bytes)
      .u64(r.received_bytes)
      .b(r.success)
      .b(r.timed_out)
      .str(r.error);
}

void read_sample(util::CodecReader& r, workload::FetchResult& out) {
  out.target = r.str("FetchResult.target");
  out.start_s = r.f64("FetchResult.start_s");
  out.ttfb_s = r.f64("FetchResult.ttfb_s");
  out.complete_s = r.f64("FetchResult.complete_s");
  out.expected_bytes = static_cast<std::size_t>(r.u64("FetchResult.expected"));
  out.received_bytes = static_cast<std::size_t>(r.u64("FetchResult.received"));
  out.success = r.b("FetchResult.success");
  out.timed_out = r.b("FetchResult.timed_out");
  out.error = r.str("FetchResult.error");
}

void write_sample(util::CodecWriter& w, const WebsiteSample& s) {
  w.str(s.pt).str(s.site).i64(s.rep);
  write_sample(w, s.result);
}

void read_sample(util::CodecReader& r, WebsiteSample& out) {
  out.pt = r.str("WebsiteSample.pt");
  out.site = r.str("WebsiteSample.site");
  out.rep = static_cast<int>(r.i64("WebsiteSample.rep"));
  read_sample(r, out.result);
}

void write_sample(util::CodecWriter& w, const PageSample& s) {
  w.str(s.pt).str(s.site).i64(s.rep);
  write_sample(w, s.result.page);
  w.u32(static_cast<std::uint32_t>(s.result.resources.size()));
  for (const workload::FetchResult& res : s.result.resources)
    write_sample(w, res);
  w.b(s.result.success)
      .f64(s.result.load_time_s)
      .f64(s.result.speed_index_s)
      .f64(s.speed_index_s);
}

void read_sample(util::CodecReader& r, PageSample& out) {
  out.pt = r.str("PageSample.pt");
  out.site = r.str("PageSample.site");
  out.rep = static_cast<int>(r.i64("PageSample.rep"));
  read_sample(r, out.result.page);
  std::uint32_t n = r.u32("PageSample.resource_count");
  out.result.resources.clear();
  out.result.resources.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) {
    workload::FetchResult res;
    read_sample(r, res);
    out.result.resources.push_back(std::move(res));
  }
  out.result.success = r.b("PageSample.success");
  out.result.load_time_s = r.f64("PageSample.load_time_s");
  out.result.speed_index_s = r.f64("PageSample.result_speed_index");
  out.speed_index_s = r.f64("PageSample.speed_index");
}

void write_sample(util::CodecWriter& w, const FileSample& s) {
  w.str(s.pt).u64(s.size_bytes).i64(s.rep);
  write_sample(w, s.result);
}

void read_sample(util::CodecReader& r, FileSample& out) {
  out.pt = r.str("FileSample.pt");
  out.size_bytes = static_cast<std::size_t>(r.u64("FileSample.size_bytes"));
  out.rep = static_cast<int>(r.i64("FileSample.rep"));
  read_sample(r, out.result);
}

void write_sample(util::CodecWriter& w, const ReliabilitySample& s) {
  w.str(s.pt)
      .u64(s.size_bytes)
      .i64(s.rep)
      .i64(s.attempts)
      .u8(static_cast<std::uint8_t>(s.outcome));
  write_sample(w, s.result);
}

void read_sample(util::CodecReader& r, ReliabilitySample& out) {
  out.pt = r.str("ReliabilitySample.pt");
  out.size_bytes =
      static_cast<std::size_t>(r.u64("ReliabilitySample.size_bytes"));
  out.rep = static_cast<int>(r.i64("ReliabilitySample.rep"));
  out.attempts = static_cast<int>(r.i64("ReliabilitySample.attempts"));
  std::uint8_t outcome = r.u8("ReliabilitySample.outcome");
  if (outcome > static_cast<std::uint8_t>(DownloadOutcome::kFailed)) {
    throw util::CodecError("corrupt ReliabilitySample: outcome byte " +
                           std::to_string(outcome));
  }
  out.outcome = static_cast<DownloadOutcome>(outcome);
  read_sample(r, out.result);
}

void write_sample(util::CodecWriter& w, const OverheadSample& s) {
  w.str(s.pt)
      .str(s.site)
      .f64(s.tor_s)
      .f64(s.pt_s)
      .i64(s.payload_bytes)
      .i64(s.handshake_bytes)
      .i64(s.framing_bytes)
      .i64(s.carrier_bytes)
      .i64(s.wire_bytes)
      .i64(s.handshake_rtts);
}

void read_sample(util::CodecReader& r, OverheadSample& out) {
  out.pt = r.str("OverheadSample.pt");
  out.site = r.str("OverheadSample.site");
  out.tor_s = r.f64("OverheadSample.tor_s");
  out.pt_s = r.f64("OverheadSample.pt_s");
  out.payload_bytes = r.i64("OverheadSample.payload_bytes");
  out.handshake_bytes = r.i64("OverheadSample.handshake_bytes");
  out.framing_bytes = r.i64("OverheadSample.framing_bytes");
  out.carrier_bytes = r.i64("OverheadSample.carrier_bytes");
  out.wire_bytes = r.i64("OverheadSample.wire_bytes");
  out.handshake_rtts = r.i64("OverheadSample.handshake_rtts");
  if (out.wire_bytes != out.payload_bytes + out.handshake_bytes +
                            out.framing_bytes + out.carrier_bytes) {
    throw util::CodecError(
        "corrupt OverheadSample: byte ledger does not balance");
  }
}

void write_timing(util::CodecWriter& w, const ShardTiming& t) {
  w.u64(t.shard).str(t.pt).u64(t.items).f64(t.virtual_seconds).i64(t.wall_us);
}

void read_timing(util::CodecReader& r, ShardTiming& out) {
  out.shard = static_cast<std::size_t>(r.u64("ShardTiming.shard"));
  out.pt = r.str("ShardTiming.pt");
  out.items = static_cast<std::size_t>(r.u64("ShardTiming.items"));
  out.virtual_seconds = r.f64("ShardTiming.virtual_seconds");
  out.wall_us = r.i64("ShardTiming.wall_us");
}

}  // namespace ptperf::checkpoint
