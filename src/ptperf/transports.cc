#include "ptperf/transports.h"

#include <stdexcept>

#include "pt/camoufler.h"
#include "pt/dnstt.h"
#include "pt/fully_encrypted.h"
#include "pt/marionette.h"
#include "pt/meek.h"
#include "pt/stegotorus.h"
#include "pt/tls_family.h"

namespace ptperf {

const std::array<TransportFactory::Registration, 12>&
TransportFactory::registry() {
  // Canonical evaluation order (the paper's Table 2 sweep order).
  static const std::array<Registration, 12> table = {{
      {PtId::kObfs4, "obfs4", &TransportFactory::build_obfs4},
      {PtId::kMeek, "meek", &TransportFactory::build_meek},
      {PtId::kSnowflake, "snowflake", &TransportFactory::build_snowflake},
      {PtId::kConjure, "conjure", &TransportFactory::build_conjure},
      {PtId::kPsiphon, "psiphon", &TransportFactory::build_psiphon},
      {PtId::kDnstt, "dnstt", &TransportFactory::build_dnstt},
      {PtId::kWebTunnel, "webtunnel", &TransportFactory::build_webtunnel},
      {PtId::kCamoufler, "camoufler", &TransportFactory::build_camoufler},
      {PtId::kCloak, "cloak", &TransportFactory::build_cloak},
      {PtId::kStegotorus, "stegotorus", &TransportFactory::build_stegotorus},
      {PtId::kMarionette, "marionette", &TransportFactory::build_marionette},
      {PtId::kShadowsocks, "shadowsocks",
       &TransportFactory::build_shadowsocks},
  }};
  return table;
}

const TransportFactory::Registration& TransportFactory::registration(PtId id) {
  for (const Registration& r : registry()) {
    if (r.id == id) return r;
  }
  throw std::invalid_argument("unknown PtId");
}

std::vector<PtId> all_pt_ids() {
  std::vector<PtId> ids;
  ids.reserve(TransportFactory::registry().size());
  for (const auto& r : TransportFactory::registry()) ids.push_back(r.id);
  return ids;
}

std::string_view pt_id_name(PtId id) {
  return TransportFactory::registration(id).name;
}

// ------------------------------------------------------------ CircuitPool

CircuitPool::CircuitPool(std::shared_ptr<tor::TorClient> client,
                         tor::PathConstraints constraints)
    : client_(std::move(client)), constraints_(constraints) {}

void CircuitPool::get(
    std::function<void(std::optional<tor::TorCircuit>, std::string)> cb) {
  if (current_ && current_->alive()) {
    cb(*current_, "");
    return;
  }
  auto self = shared_from_this();
  client_->build_circuit(
      constraints_,
      [self, cb](std::optional<tor::TorCircuit> circuit, std::string err) {
        if (circuit) self->current_ = *circuit;
        cb(std::move(circuit), std::move(err));
      });
}

tor::TorSocksServer::CircuitProvider CircuitPool::provider() {
  auto self = shared_from_this();
  return [self](std::function<void(std::optional<tor::TorCircuit>,
                                   std::string)> cb) { self->get(std::move(cb)); };
}

void CircuitPool::warm(sim::EventLoop& loop) {
  bool done = false;
  get([&done](std::optional<tor::TorCircuit>, std::string) { done = true; });
  loop.run_until_done([&] { return done; });
}

void CircuitPool::new_identity() {
  if (current_) current_->close();
  current_.reset();
}

void CircuitPool::set_constraints(tor::PathConstraints constraints) {
  constraints_ = constraints;
  new_identity();
}

// ------------------------------------------------------- TransportFactory

TransportFactory::TransportFactory(Scenario& scenario,
                                   TransportFactoryOptions opts)
    : scenario_(&scenario), opts_(opts) {}

PtStack TransportFactory::create_vanilla() {
  PtStack stack;
  stack.tor = scenario_->make_tor_client(scenario_->client_host());
  auto pool = std::make_shared<CircuitPool>(stack.tor, tor::PathConstraints{});
  std::string service = "socks-tor";
  stack.socks = std::make_shared<tor::TorSocksServer>(stack.tor, service);
  stack.socks->set_circuit_provider(pool->provider());
  stack.socks->start();
  stack.pool = pool;
  stack.fetcher =
      scenario_->make_loopback_fetcher(scenario_->client_host(), service);
  stack.dialer = scenario_->make_loopback_dialer(scenario_->client_host(), service);
  stack.new_identity = [pool] { pool->new_identity(); };
  auto tor_client = stack.tor;
  stack.rotate_guard = [tor_client] {
    tor_client->path_selector().reset_guard();
  };
  return stack;
}

PtStack TransportFactory::wrap_first_hop_transport(
    std::shared_ptr<pt::Transport> transport) {
  PtStack stack;
  stack.info = transport->info();
  stack.transport = transport;
  stack.tor = scenario_->make_tor_client(scenario_->client_host());
  stack.tor->set_first_hop_connector(transport->connector());

  tor::PathConstraints constraints;
  constraints.entry = transport->fixed_entry();
  auto pool = std::make_shared<CircuitPool>(stack.tor, constraints);
  stack.pool = pool;

  std::string service = "socks-" + transport->info().name;
  stack.socks = std::make_shared<tor::TorSocksServer>(stack.tor, service);
  stack.socks->set_circuit_provider(pool->provider());
  stack.socks->start();
  stack.fetcher =
      scenario_->make_loopback_fetcher(scenario_->client_host(), service);
  stack.dialer = scenario_->make_loopback_dialer(scenario_->client_host(), service);
  stack.new_identity = [pool] { pool->new_identity(); };
  if (!transport->fixed_entry()) {
    auto tor_client = stack.tor;
    stack.rotate_guard = [tor_client] {
      tor_client->path_selector().reset_guard();
    };
  }
  return stack;
}

PtStack TransportFactory::wrap_socks_tunnel_transport(
    std::shared_ptr<pt::Transport> transport, net::HostId server_host,
    const std::string& socks_service) {
  PtStack stack;
  stack.info = transport->info();
  stack.transport = transport;
  // Set 3: the standard Tor client utility runs on the PT server host.
  stack.tor = scenario_->make_tor_client(server_host);
  auto pool = std::make_shared<CircuitPool>(stack.tor, tor::PathConstraints{});
  stack.pool = pool;
  stack.socks = std::make_shared<tor::TorSocksServer>(stack.tor, socks_service);
  stack.socks->set_circuit_provider(pool->provider());
  stack.socks->start();

  // The fetcher dials SOCKS *through* the tunnel.
  auto t = transport;
  auto dialer = [t](std::function<void(net::ChannelPtr)> ok,
                    std::function<void(std::string)> err) {
    t->open_socks_tunnel(std::move(ok), std::move(err));
  };
  stack.dialer = dialer;
  stack.fetcher =
      std::make_shared<workload::Fetcher>(scenario_->loop(), dialer);
  stack.new_identity = [pool] { pool->new_identity(); };
  auto tor_client = stack.tor;
  stack.rotate_guard = [tor_client] {
    tor_client->path_selector().reset_guard();
  };
  return stack;
}

PtStack TransportFactory::create(PtId id) {
  const Registration& reg = registration(id);
  std::string tag = std::string(reg.name) + std::to_string(counter_++);
  return (this->*reg.build)(tag);
}

// --------------------------------------------------- per-PT registry rows
//
// Each builder stands up one PT's infrastructure (bridges, fronts,
// brokers, resolvers, proxy pools, IM relays) and wraps the transport —
// whose layer composition is declared as a StackSpec in its constructor —
// into a measurement-ready PtStack.

PtStack TransportFactory::build_obfs4(const std::string& tag) {
  Scenario& sc = *scenario_;
  tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region);
  pt::Obfs4Config cfg;
  cfg.client_host = sc.client_host();
  cfg.bridge = bridge;
  auto t = std::make_shared<pt::Obfs4Transport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_webtunnel(const std::string& tag) {
  Scenario& sc = *scenario_;
  tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region);
  pt::WebTunnelConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.bridge = bridge;
  auto t = std::make_shared<pt::WebTunnelTransport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_conjure(const std::string& tag) {
  Scenario& sc = *scenario_;
  // ISP station: slightly higher load than a managed bridge (shared
  // refraction infrastructure).
  tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region, 0.18);
  pt::ConjureConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.bridge = bridge;
  auto t = std::make_shared<pt::ConjureTransport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_meek(const std::string& tag) {
  Scenario& sc = *scenario_;
  // The public meek bridge carries many users: moderate load.
  tor::RelayIndex bridge = sc.add_bridge(net::Region::kUsEast, 0.35, 200);
  pt::MeekConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.pool_name = tag;  // "<tag>/cdn"
  cfg.bridge = bridge;
  cfg.front_host =
      sc.add_infra_host(tag + "-front", net::Region::kEuropeWest, 2000, 0.10);
  auto t = std::make_shared<pt::MeekTransport>(sc.network(), sc.consensus(),
                                               sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_dnstt(const std::string& tag) {
  Scenario& sc = *scenario_;
  tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region);
  pt::DnsttConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.bridge = bridge;
  cfg.resolver_host =
      sc.add_infra_host(tag + "-resolver", net::Region::kUsEast, 1000, 0.15);
  auto t = std::make_shared<pt::DnsttTransport>(sc.network(), sc.consensus(),
                                                sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_snowflake(const std::string& tag) {
  Scenario& sc = *scenario_;
  net::Network& net = sc.network();
  pt::SnowflakeConfig cfg;
  cfg.client_host = sc.client_host();
  // Tag-unique resource names ("<tag>/proxies", "<tag>/broker") so worlds
  // with several snowflake stacks register distinct contended pools.
  cfg.pool_name = tag;
  cfg.broker_host =
      sc.add_infra_host(tag + "-broker", net::Region::kUsEast, 1000, 0.15);
  // Volunteer proxies: residential-grade links spread across regions.
  const net::Region proxy_regions[] = {
      net::Region::kEuropeWest, net::Region::kEuropeEast,
      net::Region::kUsEast,     net::Region::kUsWest,
      net::Region::kFrankfurt,  net::Region::kToronto};
  for (std::size_t i = 0; i < opts_.snowflake_proxies; ++i) {
    net::HostTraits traits;
    traits.up_mbps = 40;
    traits.down_mbps = 100;
    traits.jitter_ms = 4.0;
    cfg.proxy_hosts.push_back(net.add_host(
        tag + "-proxy" + std::to_string(i),
        proxy_regions[i % (sizeof(proxy_regions) / sizeof(proxy_regions[0]))],
        traits));
  }
  auto t = std::make_shared<pt::SnowflakeTransport>(
      net, sc.consensus(), sc.fork_rng(tag), cfg);
  PtStack stack = wrap_first_hop_transport(t);
  stack.snowflake = t.get();
  return stack;
}

PtStack TransportFactory::build_psiphon(const std::string& tag) {
  Scenario& sc = *scenario_;
  pt::PsiphonConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.server_host = sc.add_infra_host(tag + "-server", opts_.pt_server_region);
  auto t = std::make_shared<pt::PsiphonTransport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_shadowsocks(const std::string& tag) {
  Scenario& sc = *scenario_;
  pt::ShadowsocksConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.server_host = sc.add_infra_host(tag + "-server", opts_.pt_server_region);
  auto t = std::make_shared<pt::ShadowsocksTransport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_camoufler(const std::string& tag) {
  Scenario& sc = *scenario_;
  pt::CamouflerConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.im_server_host =
      sc.add_infra_host(tag + "-im", net::Region::kEuropeWest, 2000, 0.20);
  cfg.peer_host = sc.add_infra_host(tag + "-peer", opts_.pt_server_region);
  auto t = std::make_shared<pt::CamouflerTransport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_stegotorus(const std::string& tag) {
  Scenario& sc = *scenario_;
  pt::StegotorusConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.server_host = sc.add_infra_host(tag + "-server", opts_.pt_server_region);
  auto t = std::make_shared<pt::StegotorusTransport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_first_hop_transport(t);
}

PtStack TransportFactory::build_cloak(const std::string& tag) {
  Scenario& sc = *scenario_;
  pt::CloakConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.server_host = sc.add_infra_host(tag + "-server", opts_.pt_server_region);
  cfg.socks_service = tag + "-socks";
  auto t = std::make_shared<pt::CloakTransport>(sc.network(), sc.consensus(),
                                                sc.fork_rng(tag), cfg);
  return wrap_socks_tunnel_transport(t, cfg.server_host, cfg.socks_service);
}

PtStack TransportFactory::build_marionette(const std::string& tag) {
  Scenario& sc = *scenario_;
  pt::MarionetteConfig cfg;
  cfg.client_host = sc.client_host();
  cfg.server_host = sc.add_infra_host(tag + "-server", opts_.pt_server_region);
  cfg.socks_service = tag + "-socks";
  auto t = std::make_shared<pt::MarionetteTransport>(
      sc.network(), sc.consensus(), sc.fork_rng(tag), cfg);
  return wrap_socks_tunnel_transport(t, cfg.server_host, cfg.socks_service);
}

}  // namespace ptperf
