#include "ptperf/transports.h"

#include <stdexcept>

#include "pt/camoufler.h"
#include "pt/dnstt.h"
#include "pt/fully_encrypted.h"
#include "pt/marionette.h"
#include "pt/meek.h"
#include "pt/stegotorus.h"
#include "pt/tls_family.h"

namespace ptperf {

std::vector<PtId> all_pt_ids() {
  return {PtId::kObfs4,     PtId::kMeek,       PtId::kSnowflake,
          PtId::kConjure,   PtId::kPsiphon,    PtId::kDnstt,
          PtId::kWebTunnel, PtId::kCamoufler,  PtId::kCloak,
          PtId::kStegotorus, PtId::kMarionette, PtId::kShadowsocks};
}

std::string_view pt_id_name(PtId id) {
  switch (id) {
    case PtId::kObfs4: return "obfs4";
    case PtId::kMeek: return "meek";
    case PtId::kSnowflake: return "snowflake";
    case PtId::kConjure: return "conjure";
    case PtId::kPsiphon: return "psiphon";
    case PtId::kDnstt: return "dnstt";
    case PtId::kWebTunnel: return "webtunnel";
    case PtId::kCamoufler: return "camoufler";
    case PtId::kCloak: return "cloak";
    case PtId::kStegotorus: return "stegotorus";
    case PtId::kMarionette: return "marionette";
    case PtId::kShadowsocks: return "shadowsocks";
  }
  return "unknown";
}

// ------------------------------------------------------------ CircuitPool

CircuitPool::CircuitPool(std::shared_ptr<tor::TorClient> client,
                         tor::PathConstraints constraints)
    : client_(std::move(client)), constraints_(constraints) {}

void CircuitPool::get(
    std::function<void(std::optional<tor::TorCircuit>, std::string)> cb) {
  if (current_ && current_->alive()) {
    cb(*current_, "");
    return;
  }
  auto self = shared_from_this();
  client_->build_circuit(
      constraints_,
      [self, cb](std::optional<tor::TorCircuit> circuit, std::string err) {
        if (circuit) self->current_ = *circuit;
        cb(std::move(circuit), std::move(err));
      });
}

tor::TorSocksServer::CircuitProvider CircuitPool::provider() {
  auto self = shared_from_this();
  return [self](std::function<void(std::optional<tor::TorCircuit>,
                                   std::string)> cb) { self->get(std::move(cb)); };
}

void CircuitPool::warm(sim::EventLoop& loop) {
  bool done = false;
  get([&done](std::optional<tor::TorCircuit>, std::string) { done = true; });
  loop.run_until_done([&] { return done; });
}

void CircuitPool::new_identity() {
  if (current_) current_->close();
  current_.reset();
}

void CircuitPool::set_constraints(tor::PathConstraints constraints) {
  constraints_ = constraints;
  new_identity();
}

// ------------------------------------------------------- TransportFactory

TransportFactory::TransportFactory(Scenario& scenario,
                                   TransportFactoryOptions opts)
    : scenario_(&scenario), opts_(opts) {}

PtStack TransportFactory::create_vanilla() {
  PtStack stack;
  stack.tor = scenario_->make_tor_client(scenario_->client_host());
  auto pool = std::make_shared<CircuitPool>(stack.tor, tor::PathConstraints{});
  std::string service = "socks-tor";
  stack.socks = std::make_shared<tor::TorSocksServer>(stack.tor, service);
  stack.socks->set_circuit_provider(pool->provider());
  stack.socks->start();
  stack.pool = pool;
  stack.fetcher =
      scenario_->make_loopback_fetcher(scenario_->client_host(), service);
  stack.dialer = scenario_->make_loopback_dialer(scenario_->client_host(), service);
  stack.new_identity = [pool] { pool->new_identity(); };
  auto tor_client = stack.tor;
  stack.rotate_guard = [tor_client] {
    tor_client->path_selector().reset_guard();
  };
  return stack;
}

PtStack TransportFactory::wrap_first_hop_transport(
    std::shared_ptr<pt::Transport> transport) {
  PtStack stack;
  stack.info = transport->info();
  stack.transport = transport;
  stack.tor = scenario_->make_tor_client(scenario_->client_host());
  stack.tor->set_first_hop_connector(transport->connector());

  tor::PathConstraints constraints;
  constraints.entry = transport->fixed_entry();
  auto pool = std::make_shared<CircuitPool>(stack.tor, constraints);
  stack.pool = pool;

  std::string service = "socks-" + transport->info().name;
  stack.socks = std::make_shared<tor::TorSocksServer>(stack.tor, service);
  stack.socks->set_circuit_provider(pool->provider());
  stack.socks->start();
  stack.fetcher =
      scenario_->make_loopback_fetcher(scenario_->client_host(), service);
  stack.dialer = scenario_->make_loopback_dialer(scenario_->client_host(), service);
  stack.new_identity = [pool] { pool->new_identity(); };
  if (!transport->fixed_entry()) {
    auto tor_client = stack.tor;
    stack.rotate_guard = [tor_client] {
      tor_client->path_selector().reset_guard();
    };
  }
  return stack;
}

PtStack TransportFactory::wrap_socks_tunnel_transport(
    std::shared_ptr<pt::Transport> transport, net::HostId server_host,
    const std::string& socks_service) {
  PtStack stack;
  stack.info = transport->info();
  stack.transport = transport;
  // Set 3: the standard Tor client utility runs on the PT server host.
  stack.tor = scenario_->make_tor_client(server_host);
  auto pool = std::make_shared<CircuitPool>(stack.tor, tor::PathConstraints{});
  stack.pool = pool;
  stack.socks = std::make_shared<tor::TorSocksServer>(stack.tor, socks_service);
  stack.socks->set_circuit_provider(pool->provider());
  stack.socks->start();

  // The fetcher dials SOCKS *through* the tunnel.
  auto t = transport;
  auto dialer = [t](std::function<void(net::ChannelPtr)> ok,
                    std::function<void(std::string)> err) {
    t->open_socks_tunnel(std::move(ok), std::move(err));
  };
  stack.dialer = dialer;
  stack.fetcher =
      std::make_shared<workload::Fetcher>(scenario_->loop(), dialer);
  stack.new_identity = [pool] { pool->new_identity(); };
  auto tor_client = stack.tor;
  stack.rotate_guard = [tor_client] {
    tor_client->path_selector().reset_guard();
  };
  return stack;
}

PtStack TransportFactory::create(PtId id) {
  Scenario& sc = *scenario_;
  net::Network& net = sc.network();
  const tor::Consensus& consensus = sc.consensus();
  std::string tag = std::string(pt_id_name(id)) + std::to_string(counter_++);

  switch (id) {
    case PtId::kObfs4: {
      tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region);
      pt::Obfs4Config cfg;
      cfg.client_host = sc.client_host();
      cfg.bridge = bridge;
      auto t = std::make_shared<pt::Obfs4Transport>(
          net, consensus, sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kWebTunnel: {
      tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region);
      pt::WebTunnelConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.bridge = bridge;
      auto t = std::make_shared<pt::WebTunnelTransport>(
          net, consensus, sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kConjure: {
      // ISP station: slightly higher load than a managed bridge (shared
      // refraction infrastructure).
      tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region, 0.18);
      pt::ConjureConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.bridge = bridge;
      auto t = std::make_shared<pt::ConjureTransport>(
          net, consensus, sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kMeek: {
      // The public meek bridge carries many users: moderate load.
      tor::RelayIndex bridge = sc.add_bridge(net::Region::kUsEast, 0.35, 200);
      pt::MeekConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.bridge = bridge;
      cfg.front_host =
          sc.add_infra_host(tag + "-front", net::Region::kEuropeWest, 2000, 0.10);
      auto t = std::make_shared<pt::MeekTransport>(net, consensus,
                                                   sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kDnstt: {
      tor::RelayIndex bridge = sc.add_bridge(opts_.pt_server_region);
      pt::DnsttConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.bridge = bridge;
      cfg.resolver_host =
          sc.add_infra_host(tag + "-resolver", net::Region::kUsEast, 1000, 0.15);
      auto t = std::make_shared<pt::DnsttTransport>(net, consensus,
                                                    sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kSnowflake: {
      pt::SnowflakeConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.broker_host =
          sc.add_infra_host(tag + "-broker", net::Region::kUsEast, 1000, 0.15);
      // Volunteer proxies: residential-grade links spread across regions.
      const net::Region proxy_regions[] = {
          net::Region::kEuropeWest, net::Region::kEuropeEast,
          net::Region::kUsEast,     net::Region::kUsWest,
          net::Region::kFrankfurt,  net::Region::kToronto};
      for (std::size_t i = 0; i < opts_.snowflake_proxies; ++i) {
        net::HostTraits traits;
        traits.up_mbps = 40;
        traits.down_mbps = 100;
        traits.jitter_ms = 4.0;
        cfg.proxy_hosts.push_back(net.add_host(
            tag + "-proxy" + std::to_string(i),
            proxy_regions[i % (sizeof(proxy_regions) / sizeof(proxy_regions[0]))],
            traits));
      }
      auto t = std::make_shared<pt::SnowflakeTransport>(
          net, consensus, sc.fork_rng(tag), cfg);
      PtStack stack = wrap_first_hop_transport(t);
      stack.snowflake = t.get();
      return stack;
    }
    case PtId::kPsiphon: {
      pt::PsiphonConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.server_host =
          sc.add_infra_host(tag + "-server", opts_.pt_server_region);
      auto t = std::make_shared<pt::PsiphonTransport>(net, consensus,
                                                      sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kShadowsocks: {
      pt::ShadowsocksConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.server_host =
          sc.add_infra_host(tag + "-server", opts_.pt_server_region);
      auto t = std::make_shared<pt::ShadowsocksTransport>(
          net, consensus, sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kCamoufler: {
      pt::CamouflerConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.im_server_host =
          sc.add_infra_host(tag + "-im", net::Region::kEuropeWest, 2000, 0.20);
      cfg.peer_host = sc.add_infra_host(tag + "-peer", opts_.pt_server_region);
      auto t = std::make_shared<pt::CamouflerTransport>(
          net, consensus, sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kStegotorus: {
      pt::StegotorusConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.server_host =
          sc.add_infra_host(tag + "-server", opts_.pt_server_region);
      auto t = std::make_shared<pt::StegotorusTransport>(
          net, consensus, sc.fork_rng(tag), cfg);
      return wrap_first_hop_transport(t);
    }
    case PtId::kCloak: {
      pt::CloakConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.server_host =
          sc.add_infra_host(tag + "-server", opts_.pt_server_region);
      cfg.socks_service = tag + "-socks";
      auto t = std::make_shared<pt::CloakTransport>(net, consensus,
                                                    sc.fork_rng(tag), cfg);
      return wrap_socks_tunnel_transport(t, cfg.server_host, cfg.socks_service);
    }
    case PtId::kMarionette: {
      pt::MarionetteConfig cfg;
      cfg.client_host = sc.client_host();
      cfg.server_host =
          sc.add_infra_host(tag + "-server", opts_.pt_server_region);
      cfg.socks_service = tag + "-socks";
      auto t = std::make_shared<pt::MarionetteTransport>(
          net, consensus, sc.fork_rng(tag), cfg);
      return wrap_socks_tunnel_transport(t, cfg.server_host, cfg.socks_service);
    }
  }
  throw std::invalid_argument("unknown PtId");
}

}  // namespace ptperf
