// Snapshot codec: a small self-describing binary layer on top of the
// bounds-checked util::Writer/Reader cursors. Checkpoint payloads
// (src/ptperf/checkpoint.*) are built exclusively from these primitives so
// that a truncated or corrupted file always surfaces as a CodecError —
// never as UB or silently wrong state.
//
// Conventions:
//  - integers are big-endian, matching the wire-format cursors;
//  - doubles travel as their IEEE-754 bit pattern (bit_cast), so a
//    serialize/deserialize round trip is exact, not "close";
//  - strings and blobs are u32-length-prefixed;
//  - every multi-byte read is bounds-checked, so garbage length fields
//    fail fast instead of over-reading.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace ptperf::util {

/// Thrown on any malformed snapshot input: truncation, a length field
/// running past the buffer, a value that violates the decoded type's
/// invariants. Carries a human-readable reason.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// FNV-1a 64-bit over a byte range; the snapshot trailer checksum.
/// Deterministic, dependency-free, and good enough to catch bit flips —
/// this is corruption detection, not cryptographic integrity.
std::uint64_t fnv1a(BytesView data,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Append-only serializer for snapshot payloads.
class CodecWriter {
 public:
  CodecWriter() = default;
  explicit CodecWriter(std::size_t reserve) : w_(reserve) {}

  CodecWriter& u8(std::uint8_t v) { w_.u8(v); return *this; }
  CodecWriter& u32(std::uint32_t v) { w_.u32(v); return *this; }
  CodecWriter& u64(std::uint64_t v) { w_.u64(v); return *this; }
  CodecWriter& i64(std::int64_t v) {
    w_.u64(static_cast<std::uint64_t>(v));
    return *this;
  }
  CodecWriter& b(bool v) { w_.u8(v ? 1 : 0); return *this; }
  /// Exact IEEE-754 bit pattern; round-trips NaN payloads and -0.0.
  CodecWriter& f64(double v) {
    w_.u64(std::bit_cast<std::uint64_t>(v));
    return *this;
  }
  CodecWriter& str(std::string_view s);
  CodecWriter& blob(BytesView bs);

  std::size_t size() const { return w_.size(); }
  const Bytes& view() const { return w_.view(); }
  Bytes take() { return w_.take(); }

 private:
  Writer w_;
};

/// Bounds-checked deserializer. Rethrows the underlying ShortRead as a
/// CodecError naming the field being decoded, so snapshot load failures
/// read as "snapshot truncated while reading <field>".
class CodecReader {
 public:
  explicit CodecReader(BytesView data) : r_(data) {}

  std::uint8_t u8(const char* field = "u8");
  std::uint32_t u32(const char* field = "u32");
  std::uint64_t u64(const char* field = "u64");
  std::int64_t i64(const char* field = "i64") {
    return static_cast<std::int64_t>(u64(field));
  }
  bool b(const char* field = "bool");
  double f64(const char* field = "f64") {
    return std::bit_cast<double>(u64(field));
  }
  std::string str(const char* field = "string");
  Bytes blob(const char* field = "blob");

  std::size_t remaining() const { return r_.remaining(); }
  /// Decoding a fixed-layout record must consume it exactly; trailing
  /// bytes mean the reader and writer disagree about the format.
  void expect_end(const char* what = "record");

 private:
  Reader r_;
};

}  // namespace ptperf::util
