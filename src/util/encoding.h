// Text encodings used on the wire: hex (fingerprints, test vectors),
// base32 (dnstt DNS labels, onion addresses), base64 (bridge lines).
#pragma once

#include <optional>
#include <string>

#include "util/bytes.h"

namespace ptperf::util {

std::string hex_encode(BytesView data);
/// Accepts upper/lower case; returns nullopt on odd length or bad digit.
std::optional<Bytes> hex_decode(std::string_view hex);

/// RFC 4648 base32, lower-case alphabet, unpadded (as used in DNS labels
/// by dnstt and in .onion addresses).
std::string base32_encode(BytesView data);
std::optional<Bytes> base32_decode(std::string_view text);

/// RFC 4648 base64 with padding.
std::string base64_encode(BytesView data);
std::optional<Bytes> base64_decode(std::string_view text);

}  // namespace ptperf::util
