#include "util/encoding.h"

#include <array>

namespace ptperf::util {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kBase32Alphabet[] = "abcdefghijklmnopqrstuvwxyz234567";
constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int base32_val(char c) {
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= '2' && c <= '7') return c - '2' + 26;
  return -1;
}

int base64_val(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_val(hex[i]);
    int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::string base32_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t acc = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    acc = acc << 8 | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kBase32Alphabet[(acc >> bits) & 0x1f]);
    }
  }
  if (bits > 0) out.push_back(kBase32Alphabet[(acc << (5 - bits)) & 0x1f]);
  return out;
}

std::optional<Bytes> base32_decode(std::string_view text) {
  Bytes out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    int v = base32_val(c);
    if (v < 0) return std::nullopt;
    acc = acc << 5 | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  // Trailing bits must be zero padding, otherwise the input was malformed.
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

std::string base64_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                      static_cast<std::uint32_t>(data[i + 1]) << 8 |
                      data[i + 2];
    out.push_back(kBase64Alphabet[n >> 18 & 0x3f]);
    out.push_back(kBase64Alphabet[n >> 12 & 0x3f]);
    out.push_back(kBase64Alphabet[n >> 6 & 0x3f]);
    out.push_back(kBase64Alphabet[n & 0x3f]);
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kBase64Alphabet[n >> 18 & 0x3f]);
    out.push_back(kBase64Alphabet[n >> 12 & 0x3f]);
    out.append("==");
  } else if (rem == 2) {
    std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                      static_cast<std::uint32_t>(data[i + 1]) << 8;
    out.push_back(kBase64Alphabet[n >> 18 & 0x3f]);
    out.push_back(kBase64Alphabet[n >> 12 & 0x3f]);
    out.push_back(kBase64Alphabet[n >> 6 & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t n = 0;
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding is only valid in the last group's final positions.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        ++pad;
        n <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after '='
      int v = base64_val(c);
      if (v < 0) return std::nullopt;
      n = n << 6 | static_cast<std::uint32_t>(v);
    }
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(n >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n));
  }
  return out;
}

}  // namespace ptperf::util
