// Length-prefixed message framing over byte-stream-like transports.
// Pluggable transports chop tunnel messages into their own wire units
// (DNS queries, IM messages, HTTP bodies, steg blocks); the framer restores
// the original message boundaries at the far end.
#pragma once

#include <cstdint>
#include <functional>

#include "util/bytes.h"

namespace ptperf::util {

/// Prefixes a message with its u32 length.
Bytes frame_message(BytesView message);

/// Stateful reassembler: feed arbitrary byte chunks, get whole messages.
class MessageFramer {
 public:
  using MessageHandler = std::function<void(Bytes)>;

  explicit MessageFramer(MessageHandler on_message)
      : on_message_(std::move(on_message)) {}

  /// Appends bytes; fires on_message for every completed frame.
  void feed(BytesView chunk);

  /// Bytes buffered but not yet forming a complete message.
  std::size_t pending() const { return buffer_.size(); }

 private:
  MessageHandler on_message_;
  Bytes buffer_;
};

}  // namespace ptperf::util
