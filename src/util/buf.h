// Zero-copy buffer primitives for the cell pipeline.
//
//   Buf      a fixed-capacity, move-only byte buffer. Either a slot leased
//            from a BufPool or an adopted util::Bytes (the compatibility
//            path for cold call sites). The data window can shrink
//            (resize) and advance (drop_front) without touching the
//            underlying storage, so a received wire cell can be stripped
//            of headers and handed on without a single copy.
//
//   BufPool  a slab allocator of fixed-size slots with a per-slab
//            occupancy bitmap and a LIFO free list (the bitmap-slot
//            packet-metadata design of classic packet transports). Slot
//            acquisition order is a pure function of the acquire/release
//            sequence, and each lease carries a deterministic serial, so
//            pooled buffers never perturb replay determinism. Requests
//            larger than the slot size fall back to an owned heap buffer
//            behind the same Buf interface.
//
//   Arena    a bump allocator for per-turn scratch: alloc() is pointer
//            arithmetic, reset() recycles every chunk at once. Nothing
//            allocated from an Arena may outlive the next reset().
//
// Ownership discipline (see docs/PERFORMANCE.md): buffers flow DOWN the
// stack by move (`Channel::send(Buf)` consumes), views flow UP as
// BytesView. A pool must outlive every Buf leased from it; the
// thread-local `local_pool()` satisfies this for all simulation worlds,
// which are single-threaded by contract (each world runs entirely on one
// shard thread, so a lease is always released on the thread that took it).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/bytes.h"

namespace ptperf::util {

class BufPool;

class Buf {
 public:
  Buf() = default;

  /// Adopts an owned byte vector without copying. Intentionally implicit:
  /// `ch->send(writer.take())` and `ch->send(std::move(bytes))` stay valid
  /// while passing an lvalue Bytes (a hidden copy) fails to compile.
  Buf(Bytes&& owned)  // NOLINT(google-explicit-constructor)
      : len_(owned.size()), cap_(owned.size()), vec_(std::move(owned)) {
    base_ = vec_.data();
  }

  Buf(const Buf&) = delete;
  Buf& operator=(const Buf&) = delete;
  Buf(Buf&& other) noexcept { move_from(other); }
  Buf& operator=(Buf&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  ~Buf() { release(); }

  /// Owned deep copy (cold paths that must duplicate a view).
  static Buf copy_of(BytesView data) {
    return Buf(Bytes(data.begin(), data.end()));
  }
  /// Pooled deep copy when it fits the pool's slot size.
  static Buf copy_of(BytesView data, BufPool& pool);

  bool valid() const { return base_ != nullptr; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::uint8_t* data() { return base_ + off_; }
  const std::uint8_t* data() const { return base_ + off_; }
  std::uint8_t* begin() { return data(); }
  std::uint8_t* end() { return data() + len_; }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }
  std::uint8_t& operator[](std::size_t i) { return data()[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return data()[i]; }

  /// Bytes available from the current window start to the end of storage.
  std::size_t capacity() const { return cap_ - off_; }

  /// Grows or shrinks the data window within capacity(). Grown bytes are
  /// NOT initialized — encode-into writers fill every byte they claim.
  void resize(std::size_t n) {
    if (n > capacity()) throw ShortRead(n, capacity());
    len_ = static_cast<std::uint32_t>(n);
  }

  /// Advances the window start (header stripping without a copy).
  void drop_front(std::size_t n) {
    if (n > len_) throw ShortRead(n, len_);
    off_ += static_cast<std::uint32_t>(n);
    len_ -= static_cast<std::uint32_t>(n);
  }

  std::span<std::uint8_t> span() { return {data(), len_}; }
  BytesView view() const { return {data(), len_}; }
  operator BytesView() const { return view(); }  // NOLINT

  /// Copies the window out into an owned vector (boundary to cold code).
  Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// Moves the storage out when this Buf adopted a vector and the window
  /// still covers it exactly; copies otherwise.
  Bytes take_bytes() && {
    if (pool_ == nullptr && off_ == 0 && len_ == vec_.size() &&
        !vec_.empty()) {
      Bytes out = std::move(vec_);
      base_ = nullptr;
      off_ = len_ = cap_ = 0;
      return out;
    }
    return to_bytes();
  }

  /// Lease serial assigned by the pool (0 for adopted/owned buffers).
  /// Serials increase in acquisition order — a deterministic identity for
  /// tests and diagnostics where a pointer would depend on layout.
  std::uint64_t serial() const { return serial_; }

  /// Pool this buffer is leased from, or nullptr.
  const BufPool* pool() const { return pool_; }

 private:
  friend class BufPool;
  Buf(BufPool* pool, std::uint8_t* base, std::uint32_t slot,
      std::uint32_t len, std::uint32_t cap, std::uint64_t serial)
      : pool_(pool),
        base_(base),
        slot_(slot),
        len_(len),
        cap_(cap),
        serial_(serial) {}

  void move_from(Buf& other) {
    pool_ = other.pool_;
    base_ = other.base_;
    slot_ = other.slot_;
    off_ = other.off_;
    len_ = other.len_;
    cap_ = other.cap_;
    serial_ = other.serial_;
    vec_ = std::move(other.vec_);
    if (pool_ == nullptr) base_ = vec_.empty() ? nullptr : vec_.data();
    other.pool_ = nullptr;
    other.base_ = nullptr;
    other.off_ = other.len_ = other.cap_ = 0;
    other.serial_ = 0;
  }

  void release();

  BufPool* pool_ = nullptr;      // null: storage is vec_ (or empty)
  std::uint8_t* base_ = nullptr;
  std::uint32_t slot_ = 0;       // global slot index within pool_
  std::uint32_t off_ = 0;        // window start relative to base_
  std::uint32_t len_ = 0;        // window length
  std::uint32_t cap_ = 0;        // total storage length
  std::uint64_t serial_ = 0;
  Bytes vec_;                    // owned storage when pool_ == nullptr
};

class BufPool {
 public:
  /// Slot size covers a full Tor cell plus AEAD framing with headroom;
  /// larger requests transparently fall back to owned heap buffers.
  static constexpr std::size_t kDefaultSlotSize = 2048;
  static constexpr std::size_t kSlotsPerSlab = 64;  // one occupancy word

  explicit BufPool(std::size_t slot_size = kDefaultSlotSize)
      : slot_size_(slot_size) {}
  BufPool(const BufPool&) = delete;
  BufPool& operator=(const BufPool&) = delete;

  /// Leases a buffer of exactly `size` bytes (uninitialized). Pooled when
  /// size <= slot_size(), an owned fallback otherwise.
  Buf acquire(std::size_t size);

  std::size_t slot_size() const { return slot_size_; }
  std::size_t slabs() const { return slabs_.size(); }
  std::size_t in_use() const { return in_use_; }
  std::size_t high_water() const { return high_water_; }
  std::uint64_t total_acquired() const { return next_serial_; }
  std::uint64_t fallbacks() const { return fallbacks_; }

  /// Occupancy of one slot (tests: reuse-without-aliasing properties).
  bool slot_in_use(std::uint32_t slot) const;

 private:
  friend class Buf;

  struct Slab {
    std::unique_ptr<std::uint8_t[]> data;
    std::uint64_t used = 0;  // occupancy bitmap, bit i = slot i
  };

  void release_slot(std::uint32_t slot);

  std::size_t slot_size_;
  std::vector<Slab> slabs_;
  std::vector<std::uint32_t> free_;  // LIFO: hot slots get reused first
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t next_serial_ = 0;
  std::uint64_t fallbacks_ = 0;
};

/// The calling thread's default pool. Worlds are single-threaded (each
/// scenario runs wholly on one shard thread), so every lease is released
/// on the thread that took it and pools are never shared.
BufPool& local_pool();

/// Bump allocator for per-turn scratch. alloc() never moves previously
/// returned spans; reset() recycles all chunks without freeing them.
class Arena {
 public:
  explicit Arena(std::size_t chunk_size = 64 * 1024)
      : chunk_size_(chunk_size) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized scratch; valid until the next reset().
  std::span<std::uint8_t> alloc(std::size_t n);

  /// Zero-initialized scratch; valid until the next reset().
  std::span<std::uint8_t> alloc_zeroed(std::size_t n) {
    auto s = alloc(n);
    std::memset(s.data(), 0, s.size());
    return s;
  }

  /// Invalidates every outstanding span; keeps the chunks for reuse.
  void reset() {
    chunk_index_ = 0;
    chunk_used_ = 0;
    used_ = 0;
  }

  std::size_t used() const { return used_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  std::size_t chunk_size_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;  // chunk currently bump-allocating
  std::size_t chunk_used_ = 0;   // bytes used in that chunk
  std::size_t used_ = 0;         // bytes used since last reset
  std::size_t high_water_ = 0;
};

}  // namespace ptperf::util
