#include "util/buf.h"

#include <bit>

namespace ptperf::util {

void Buf::release() {
  if (pool_ != nullptr) {
    pool_->release_slot(slot_);
    pool_ = nullptr;
  }
  base_ = nullptr;
  off_ = len_ = cap_ = 0;
  serial_ = 0;
  vec_.clear();
}

Buf Buf::copy_of(BytesView data, BufPool& pool) {
  Buf b = pool.acquire(data.size());
  if (!data.empty()) std::memcpy(b.data(), data.data(), data.size());
  return b;
}

Buf BufPool::acquire(std::size_t size) {
  std::uint64_t serial = next_serial_++;
  if (size > slot_size_) {
    // Oversized request: owned fallback behind the same interface.
    ++fallbacks_;
    Buf b{Bytes(size)};
    b.serial_ = serial;
    return b;
  }
  if (free_.empty()) {
    // Grow by one slab; push its slots so the lowest index comes off the
    // free list first (deterministic first-fit order, like a bitmap scan).
    Slab slab;
    slab.data = std::make_unique<std::uint8_t[]>(slot_size_ * kSlotsPerSlab);
    auto base = static_cast<std::uint32_t>((slabs_.size()) * kSlotsPerSlab);
    slabs_.push_back(std::move(slab));
    for (std::size_t i = kSlotsPerSlab; i-- > 0;)
      free_.push_back(base + static_cast<std::uint32_t>(i));
  }
  std::uint32_t slot = free_.back();
  free_.pop_back();
  Slab& slab = slabs_[slot / kSlotsPerSlab];
  std::uint64_t bit = std::uint64_t{1} << (slot % kSlotsPerSlab);
  slab.used |= bit;
  ++in_use_;
  if (in_use_ > high_water_) high_water_ = in_use_;
  std::uint8_t* base = slab.data.get() + (slot % kSlotsPerSlab) * slot_size_;
  return Buf(this, base, slot, static_cast<std::uint32_t>(size),
             static_cast<std::uint32_t>(slot_size_), serial);
}

bool BufPool::slot_in_use(std::uint32_t slot) const {
  std::size_t slab = slot / kSlotsPerSlab;
  if (slab >= slabs_.size()) return false;
  return (slabs_[slab].used >> (slot % kSlotsPerSlab)) & 1;
}

void BufPool::release_slot(std::uint32_t slot) {
  Slab& slab = slabs_[slot / kSlotsPerSlab];
  std::uint64_t bit = std::uint64_t{1} << (slot % kSlotsPerSlab);
  // Double release would hand one slot to two leases (aliasing); the
  // bitmap is the source of truth, so treat it as fatal in tests.
  if ((slab.used & bit) == 0) std::abort();
  slab.used &= ~bit;
  --in_use_;
  free_.push_back(slot);
}

BufPool& local_pool() {
  thread_local BufPool pool;
  return pool;
}

std::span<std::uint8_t> Arena::alloc(std::size_t n) {
  used_ += n;
  if (used_ > high_water_) high_water_ = used_;
  while (chunk_index_ < chunks_.size()) {
    Chunk& c = chunks_[chunk_index_];
    if (chunk_used_ + n <= c.size) {
      std::uint8_t* p = c.data.get() + chunk_used_;
      chunk_used_ += n;
      return {p, n};
    }
    ++chunk_index_;
    chunk_used_ = 0;
  }
  Chunk c;
  c.size = n > chunk_size_ ? n : chunk_size_;
  c.data = std::make_unique<std::uint8_t[]>(c.size);
  chunks_.push_back(std::move(c));
  chunk_index_ = chunks_.size() - 1;
  chunk_used_ = n;
  return {chunks_.back().data.get(), n};
}

}  // namespace ptperf::util
