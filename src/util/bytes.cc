#include "util/bytes.h"

namespace ptperf::util {

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace ptperf::util
