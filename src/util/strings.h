// Small string helpers shared by report formatting and config parsing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ptperf::util {

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-precision float formatting for report tables ("%.2f" style without
/// the locale pitfalls of streams).
std::string fmt_double(double v, int precision);

}  // namespace ptperf::util
