// Small string helpers shared by report formatting and config parsing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ptperf::util {

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-precision float formatting for report tables ("%.2f" style without
/// the locale pitfalls of streams).
std::string fmt_double(double v, int precision);

/// Checked decimal parsing (the atoi/strtoull replacements simlint's
/// unsafe-c rule points at). Leading whitespace is skipped; parsing stops at
/// the first non-digit; nullopt if no digits were found or the value
/// overflows.
std::optional<int> parse_int(std::string_view s);
std::optional<std::uint64_t> parse_u64(std::string_view s);

}  // namespace ptperf::util
