// Lightweight expected<T, Error> used for fallible wire-format parsing and
// protocol operations where exceptions would be the wrong tool (parse
// failures of attacker-controlled bytes are expected, not exceptional).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace ptperf::util {

/// Error carries a category-free message plus an optional code; protocols
/// in this codebase care about "did it parse / did the peer misbehave",
/// not errno taxonomy.
struct Error {
  std::string message;

  explicit Error(std::string msg) : message(std::move(msg)) {}
};

template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}          // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result holds a value, not an error");
    return std::get<Error>(state_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok())
      throw std::runtime_error("Result error: " + std::get<Error>(state_).message);
  }

  std::variant<T, Error> state_;
};

}  // namespace ptperf::util
