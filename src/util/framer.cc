#include "util/framer.h"

namespace ptperf::util {

Bytes frame_message(BytesView message) {
  Writer w(message.size() + 4);
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.raw(message);
  return w.take();
}

void MessageFramer::feed(BytesView chunk) {
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  while (buffer_.size() >= 4) {
    std::uint32_t len = static_cast<std::uint32_t>(buffer_[0]) << 24 |
                        static_cast<std::uint32_t>(buffer_[1]) << 16 |
                        static_cast<std::uint32_t>(buffer_[2]) << 8 |
                        buffer_[3];
    if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return;
    Bytes message(buffer_.begin() + 4, buffer_.begin() + 4 + len);
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
    on_message_(std::move(message));
  }
}

}  // namespace ptperf::util
