#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ptperf::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.starts_with(prefix);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {

template <typename T>
std::optional<T> parse_decimal(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  T value{};
  auto [ptr, ec] = std::from_chars(s.data() + i, s.data() + s.size(), value);
  if (ec != std::errc() || ptr == s.data() + i) return std::nullopt;
  return value;
}

}  // namespace

std::optional<int> parse_int(std::string_view s) {
  return parse_decimal<int>(s);
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  return parse_decimal<std::uint64_t>(s);
}

}  // namespace ptperf::util
