#include "util/codec.h"

namespace ptperf::util {

std::uint64_t fnv1a(BytesView data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

CodecWriter& CodecWriter::str(std::string_view s) {
  w_.u32(static_cast<std::uint32_t>(s.size()));
  w_.raw(s);
  return *this;
}

CodecWriter& CodecWriter::blob(BytesView bs) {
  w_.u32(static_cast<std::uint32_t>(bs.size()));
  w_.raw(bs);
  return *this;
}

namespace {
[[noreturn]] void truncated(const char* field, const ShortRead& e) {
  throw CodecError(std::string("snapshot truncated while reading ") + field +
                   " (" + e.what() + ")");
}
}  // namespace

std::uint8_t CodecReader::u8(const char* field) {
  try {
    return r_.u8();
  } catch (const ShortRead& e) {
    truncated(field, e);
  }
}

std::uint32_t CodecReader::u32(const char* field) {
  try {
    return r_.u32();
  } catch (const ShortRead& e) {
    truncated(field, e);
  }
}

std::uint64_t CodecReader::u64(const char* field) {
  try {
    return r_.u64();
  } catch (const ShortRead& e) {
    truncated(field, e);
  }
}

bool CodecReader::b(const char* field) {
  std::uint8_t v = u8(field);
  if (v > 1) {
    throw CodecError(std::string("corrupt bool while reading ") + field +
                     ": byte value " + std::to_string(v));
  }
  return v == 1;
}

std::string CodecReader::str(const char* field) {
  std::uint32_t n = u32(field);
  try {
    auto v = r_.take(n);
    return std::string(reinterpret_cast<const char*>(v.data()), v.size());
  } catch (const ShortRead& e) {
    truncated(field, e);
  }
}

Bytes CodecReader::blob(const char* field) {
  std::uint32_t n = u32(field);
  try {
    return r_.take_copy(n);
  } catch (const ShortRead& e) {
    truncated(field, e);
  }
}

void CodecReader::expect_end(const char* what) {
  if (r_.remaining() != 0) {
    throw CodecError(std::string("trailing bytes after ") + what + ": " +
                     std::to_string(r_.remaining()) + " unread");
  }
}

}  // namespace ptperf::util
