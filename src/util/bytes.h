// Byte-buffer primitives: owned buffers plus bounds-checked big-endian
// reader/writer cursors used by every wire format in the project
// (Tor cells, SOCKS5, DNS, TLS records, PT framings).
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ptperf::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes from a string's raw characters.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte range as text.
inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Constant-time equality; length mismatch returns false without leaking
/// a timing signal about the common prefix.
bool ct_equal(BytesView a, BytesView b);

/// Thrown by Reader when a read would run past the end of the buffer.
class ShortRead : public std::runtime_error {
 public:
  ShortRead(std::size_t want, std::size_t have)
      : std::runtime_error("short read: want " + std::to_string(want) +
                           " bytes, have " + std::to_string(have)) {}
};

/// Bounds-checked forward cursor over an immutable byte range.
/// All multi-byte integers are big-endian (network order), matching the
/// Tor cell / DNS / TLS conventions.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    auto b = take(2);
    return static_cast<std::uint16_t>(b[0]) << 8 | b[1];
  }
  std::uint32_t u32() {
    auto b = take(4);
    return static_cast<std::uint32_t>(b[0]) << 24 |
           static_cast<std::uint32_t>(b[1]) << 16 |
           static_cast<std::uint32_t>(b[2]) << 8 | b[3];
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return hi << 32 | u32();
  }

  /// Reads exactly n bytes.
  BytesView take(std::size_t n) {
    if (n > remaining()) throw ShortRead(n, remaining());
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Bytes take_copy(std::size_t n) {
    auto v = take(n);
    return Bytes(v.begin(), v.end());
  }

  /// Consumes the rest of the buffer.
  Bytes rest() { return take_copy(remaining()); }

  /// Consumes the rest of the buffer as a view into the underlying
  /// storage — the zero-copy sibling of rest(). The view is only valid as
  /// long as the buffer the Reader was constructed over.
  BytesView rest_view() { return take(remaining()); }

  void skip(std::size_t n) { take(n); }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian serializer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  Writer& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  Writer& u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
    return *this;
  }
  Writer& u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
    return *this;
  }
  Writer& u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
    return *this;
  }
  Writer& raw(BytesView b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
    return *this;
  }
  Writer& raw(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }
  Writer& zeros(std::size_t n) {
    buf_.insert(buf_.end(), n, 0);
    return *this;
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& view() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

}  // namespace ptperf::util
