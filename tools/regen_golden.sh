#!/usr/bin/env bash
# Regenerates the golden-figure CSVs under tests/golden/ from the current
# build. Run after an intentional change to sampling, statistics, or the
# simulation model, then commit the diff alongside the change — the golden
# suites (tests/golden_figures_test.cc, tests/ensemble_test.cc)
# byte-compare against these files.
#
# Usage: tools/regen_golden.sh [build-dir]   (default: build)
#
# Two phases:
#   1. Base goldens at --repeats 1 (the pre-ensemble behaviour), including
#      fig10a's population-emitted timeline and fig12's weekly boxes. Before
#      replacing anything, each output is diffed against the checked-in
#      golden: a drift means the single-run pipeline changed, which the
#      ensemble layer alone must never do. The script aborts on drift
#      unless ALLOW_DRIFT=1 acknowledges an intentional model change.
#   2. Ensemble goldens from --repeats 3 --jobs 2 (fig2a, fig2b, fig5,
#      fig6, fig8, fig9, fig10), regenerated from the base-verified build.
#
# Flags here must match the test files exactly. `#` comment lines
# (seed/jobs/wall_s) are stripped: wall-clock is outside the determinism
# contract.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

DRIFTED=0

# Phase 1: base goldens, pinned to --repeats 1. Verify before replacing.
# One bench invocation can own several goldens: arguments starting with
# `--` are bench flags (consumed with their value), everything else is a
# CSV the run produced.
BASE_CSVS=()
run_base() {
  local bench="$1"
  shift
  local flags=() csvs=()
  while [ "$#" -gt 0 ]; do
    case "$1" in
      --*) flags+=("$1" "$2"); shift 2 ;;
      *) csvs+=("$1"); shift ;;
    esac
  done
  "$ROOT/$BUILD/bench/$bench" --scale 0.05 --seed 1 --jobs 2 --repeats 1 \
    --out "$TMP" "${flags[@]}" > /dev/null
  local csv
  for csv in "${csvs[@]}"; do
    grep -v '^#' "$TMP/$csv" > "$TMP/new_$csv"
    if [ -f "$ROOT/tests/golden/$csv" ] && \
       ! cmp -s "$TMP/new_$csv" "$ROOT/tests/golden/$csv"; then
      echo "DRIFT: tests/golden/$csv no longer matches a --repeats 1 run" >&2
      diff -u "$ROOT/tests/golden/$csv" "$TMP/new_$csv" >&2 || true
      DRIFTED=1
    fi
    cp "$TMP/new_$csv" "$TMP/stage_$csv"
    BASE_CSVS+=("$csv")
  done
}

run_base bench_fig2a_website_curl fig2a_boxes.csv
run_base bench_fig2b_website_selenium fig2b_boxes.csv
run_base bench_fig5_file_download fig5_times.csv
run_base bench_fig6_ttfb fig6_ttfb_ecdf.csv
run_base bench_fig8_reliability fig8a_outcomes.csv --faults paper --retries 1
run_base bench_fig9_overhead fig9_overhead.csv
run_base bench_fig10_snowflake_load fig10a_timeline.csv fig10b_boxes.csv
run_base bench_fig12_snowflake_monitor fig12_weekly.csv

if [ "$DRIFTED" -ne 0 ] && [ "${ALLOW_DRIFT:-0}" != "1" ]; then
  echo "" >&2
  echo "Base goldens drifted. If the simulation/statistics change is" >&2
  echo "intentional, re-run with ALLOW_DRIFT=1 to accept the new base" >&2
  echo "goldens; otherwise fix the regression first." >&2
  exit 1
fi

for csv in "${BASE_CSVS[@]}"; do
  cp "$TMP/stage_$csv" "$ROOT/tests/golden/$csv"
  echo "regenerated tests/golden/$csv"
done

# Phase 2: ensemble goldens at --repeats 3 (checked by the EnsembleGolden
# suites in tests/ensemble_test.cc). Phase 1 already verified that the
# --repeats 1 path is byte-identical for these benches, so the ensemble
# tables regenerate from a base-verified build.
run_ensemble() {
  local bench="$1"
  shift
  # Arguments starting with -- are extra bench flags (consumed with their
  # value); everything else is a CSV to regenerate.
  local flags=() csvs=()
  while [ "$#" -gt 0 ]; do
    case "$1" in
      --*) flags+=("$1" "$2"); shift 2 ;;
      *) csvs+=("$1"); shift ;;
    esac
  done
  "$ROOT/$BUILD/bench/$bench" --scale 0.05 --seed 1 --jobs 2 --repeats 3 \
    --out "$TMP" "${flags[@]}" > /dev/null
  for csv in "${csvs[@]}"; do
    grep -v '^#' "$TMP/$csv" > "$ROOT/tests/golden/$csv"
    echo "regenerated tests/golden/$csv"
  done
}

run_ensemble bench_fig2a_website_curl fig2a_ensemble.csv \
  fig2a_ensemble_paired.csv
run_ensemble bench_fig2b_website_selenium fig2b_ensemble.csv \
  fig2b_ensemble_paired.csv
run_ensemble bench_fig5_file_download fig5_ensemble.csv \
  fig5_ensemble_paired.csv
run_ensemble bench_fig6_ttfb fig6_ensemble.csv fig6_ensemble_paired.csv
run_ensemble bench_fig8_reliability --faults paper --retries 1 \
  fig8_ensemble.csv fig8_ensemble_paired.csv
run_ensemble bench_fig9_overhead fig9_ensemble.csv fig9_ensemble_paired.csv
run_ensemble bench_fig10_snowflake_load fig10_ensemble.csv \
  fig10_ensemble_paired.csv
