#!/usr/bin/env bash
# Regenerates the golden-figure CSVs under tests/golden/ from the current
# build. Run after an intentional change to sampling, statistics, or the
# simulation model, then commit the diff alongside the change — the golden
# suite (tests/golden_figures_test.cc) byte-compares against these files.
#
# Usage: tools/regen_golden.sh [build-dir]   (default: build)
#
# Flags here must match tests/golden_figures_test.cc exactly. `#` comment
# lines (seed/jobs/wall_s) are stripped: wall-clock is outside the
# determinism contract.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run() {
  local bench="$1" csv="$2"
  shift 2
  "$ROOT/$BUILD/bench/$bench" --scale 0.05 --seed 1 --jobs 2 \
    --out "$TMP" "$@" > /dev/null
  grep -v '^#' "$TMP/$csv" > "$ROOT/tests/golden/$csv"
  echo "regenerated tests/golden/$csv"
}

run bench_fig2a_website_curl fig2a_boxes.csv
run bench_fig5_file_download fig5_times.csv
run bench_fig6_ttfb fig6_ttfb_ecdf.csv
run bench_fig8_reliability fig8a_outcomes.csv --faults paper --retries 1
