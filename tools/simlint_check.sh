#!/usr/bin/env bash
# Shared simlint entry point for CI and local runs: builds the linter from
# source (no dependencies beyond a C++20 compiler), then lints src/ bench/
# tools/ with the declared layer DAG and the checked-in baseline. Only NEW
# findings fail; pre-existing debt lives in tools/simlint/baseline.json.
#
#   tools/simlint_check.sh [--sarif <out.sarif>] [--write-baseline]
#
# --sarif additionally writes a SARIF 2.1 document (for code-scanning
# upload); --write-baseline regenerates the baseline after deliberate rule
# or debt changes — review the diff before committing it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

sarif_out=""
write_baseline=0
while [ $# -gt 0 ]; do
  case "$1" in
    --sarif)
      sarif_out="$2"
      shift 2
      ;;
    --write-baseline)
      write_baseline=1
      shift
      ;;
    *)
      echo "usage: tools/simlint_check.sh [--sarif <out.sarif>] [--write-baseline]" >&2
      exit 2
      ;;
  esac
done

bin="${SIMLINT_BIN:-}"
if [ -z "$bin" ]; then
  bin="$(mktemp -d)/simlint"
  "${CXX:-g++}" -std=c++20 -O2 -Wall -Wextra -o "$bin" \
    tools/simlint/lexer.cc tools/simlint/json.cc tools/simlint/project.cc \
    tools/simlint/graph.cc tools/simlint/baseline.cc tools/simlint/sarif.cc \
    tools/simlint/rules.cc tools/simlint/main.cc
fi

args=(--layers tools/simlint/layers.conf)
if [ "$write_baseline" = 1 ]; then
  args+=(--write-baseline tools/simlint/baseline.json)
else
  args+=(--baseline tools/simlint/baseline.json)
fi
if [ -n "$sarif_out" ]; then
  args+=(--sarif "$sarif_out")
fi

"$bin" "${args[@]}" src bench tools
