// ptperf — the command-line front end to the measurement harness.
//
//   ptperf campaign  [--pt obfs4|all] [--sites N] [--reps R] [--selenium]
//   ptperf files     [--pt obfs4] [--sizes 5,10,50] [--reps R]
//   ptperf stream    [--pt obfs4] [--kbps 256] [--seconds 60]
//   ptperf ting      [--x A --y B]
//   ptperf inventory
//
// Global options: --seed N, --client BLR|LON|TORO, --wireless.
#include <cstdio>
#include <cstring>
#include <map>

#include "population/contention.h"
#include "pt/inventory.h"
#include "ptperf/campaign.h"
#include "stats/descriptive.h"
#include "stats/table.h"
#include "tor/ting.h"
#include "util/strings.h"
#include "workload/streaming.h"

namespace ptperf {
namespace {

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long num(const std::string& key, long fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtol(it->second.c_str(), nullptr, 10);
  }
};

CliArgs parse(int argc, char** argv) {
  CliArgs args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    std::string key = a.substr(2);
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

net::Region client_region(const CliArgs& args) {
  std::string c = util::to_lower(args.get("client", "lon"));
  if (c == "blr" || c == "bangalore") return net::Region::kBangalore;
  if (c == "toro" || c == "toronto") return net::Region::kToronto;
  return net::Region::kLondon;
}

Scenario make_scenario(const CliArgs& args, std::size_t sites) {
  ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  cfg.client_region = client_region(args);
  cfg.wireless_client = args.has("wireless");
  cfg.tranco_sites = sites;
  cfg.cbl_sites = 0;
  return Scenario(cfg);
}

std::optional<PtId> pt_by_name(const std::string& name) {
  for (PtId id : all_pt_ids()) {
    if (pt_id_name(id) == name) return id;
  }
  return std::nullopt;
}

int cmd_campaign(const CliArgs& args) {
  auto sites_n = static_cast<std::size_t>(args.num("sites", 10));
  Scenario scenario = make_scenario(args, sites_n);
  TransportFactory factory(scenario);
  CampaignOptions copts;
  copts.website_reps = static_cast<int>(args.num("reps", 3));
  Campaign campaign(scenario, copts);
  auto sites = Campaign::take_sites(scenario.tranco(), sites_n);
  bool selenium = args.has("selenium");

  stats::Table t({"pt", "n", "mean_s", "median_s", "p90_s", "failures"});
  auto measure = [&](PtStack stack) {
    std::vector<double> times;
    std::size_t total = 0;
    if (selenium) {
      auto samples = campaign.run_website_selenium(stack, sites);
      if (samples.empty()) {
        std::printf("%-12s excluded (no parallel streams)\n",
                    stack.name().c_str());
        return;
      }
      total = samples.size();
      times = load_seconds(samples);
    } else {
      auto samples = campaign.run_website_curl(stack, sites);
      total = samples.size();
      times = elapsed_seconds(samples);
    }
    t.add_row({stack.name(), std::to_string(times.size()),
               util::fmt_double(stats::mean(times), 2),
               times.empty() ? "-" : util::fmt_double(stats::median(times), 2),
               times.empty() ? "-" : util::fmt_double(stats::quantile(times, 0.9), 2),
               std::to_string(total - times.size())});
    std::printf("  %s done\n", stack.name().c_str());
    std::fflush(stdout);
  };

  std::string which = args.get("pt", "all");
  if (which == "all") {
    measure(factory.create_vanilla());
    for (PtId id : all_pt_ids()) measure(factory.create(id));
  } else if (which == "tor") {
    measure(factory.create_vanilla());
  } else {
    auto id = pt_by_name(which);
    if (!id) {
      std::fprintf(stderr, "unknown transport: %s\n", which.c_str());
      return 2;
    }
    measure(factory.create_vanilla());
    measure(factory.create(*id));
  }
  std::printf("\n%s", t.to_text().c_str());
  return 0;
}

int cmd_files(const CliArgs& args) {
  Scenario scenario = make_scenario(args, 2);
  TransportFactory factory(scenario);
  CampaignOptions copts;
  copts.file_reps = static_cast<int>(args.num("reps", 3));
  Campaign campaign(scenario, copts);

  std::vector<std::size_t> sizes;
  for (const std::string& s : util::split(args.get("sizes", "5,10"), ',')) {
    long mb = std::strtol(s.c_str(), nullptr, 10);
    if (mb > 0) sizes.push_back(static_cast<std::size_t>(mb) << 20);
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "no valid --sizes\n");
    return 2;
  }

  auto run_one = [&](PtStack stack) {
    if (stack.snowflake)
      ptperf::population::apply_regime(*stack.snowflake, args.has("overload"));
    auto samples = campaign.run_file_downloads(stack, sizes);
    stats::Table t({"size", "rep", "outcome", "time_s", "fraction"});
    for (const FileSample& s : samples) {
      t.add_row({std::to_string(s.size_bytes >> 20) + "MB",
                 std::to_string(s.rep),
                 std::string(outcome_name(classify(s.result))),
                 s.result.success ? util::fmt_double(s.result.elapsed(), 1)
                                  : "-",
                 util::fmt_double(s.result.fraction(), 2)});
    }
    std::printf("== %s ==\n%s\n", stack.name().c_str(), t.to_text().c_str());
  };

  std::string which = args.get("pt", "obfs4");
  if (which == "tor") {
    run_one(factory.create_vanilla());
  } else {
    auto id = pt_by_name(which);
    if (!id) {
      std::fprintf(stderr, "unknown transport: %s\n", which.c_str());
      return 2;
    }
    run_one(factory.create(*id));
  }
  return 0;
}

int cmd_stream(const CliArgs& args) {
  Scenario scenario = make_scenario(args, 2);
  TransportFactory factory(scenario);

  workload::StreamingSpec spec;
  spec.bitrate_kbps = static_cast<double>(args.num("kbps", 256));
  spec.duration = sim::from_seconds(static_cast<double>(args.num("seconds", 60)));

  PtStack stack = [&] {
    std::string which = args.get("pt", "obfs4");
    if (which == "tor") return factory.create_vanilla();
    auto id = pt_by_name(which);
    if (!id) {
      std::fprintf(stderr, "unknown transport: %s; using obfs4\n",
                   which.c_str());
      return factory.create(PtId::kObfs4);
    }
    return factory.create(*id);
  }();

  bool done = false;
  workload::StreamingClient sc(scenario.loop(), stack.dialer);
  sc.play(spec, sim::from_seconds(sim::to_seconds(spec.duration) * 5 + 120),
          [&](workload::StreamingResult r) {
            std::printf(
                "%s: started=%d completed=%d startup=%.2fs rebuffers=%d "
                "stall=%.1f%% goodput=%.0fkbps%s%s\n",
                stack.name().c_str(), r.started, r.completed,
                r.startup_delay_s, r.rebuffer_events,
                100 * r.stall_ratio(spec), r.goodput_kbps,
                r.error.empty() ? "" : " error=", r.error.c_str());
            done = true;
          });
  scenario.loop().run_until_done([&] { return done; });
  return 0;
}

int cmd_ting(const CliArgs& args) {
  Scenario scenario = make_scenario(args, 1);
  net::HostId echo = scenario.add_infra_host("echo", client_region(args), 1000, 0);
  tor::start_echo_server(scenario.network(), echo);
  scenario.add_exit_alias("ting.echo", echo);
  auto client = scenario.make_tor_client(scenario.client_host());

  auto x = static_cast<tor::RelayIndex>(args.num("x", 2));
  auto y = static_cast<tor::RelayIndex>(args.num("y", 9));
  bool done = false;
  tor::ting_measure(client, "ting.echo:80", x, y, {},
                    [&](tor::TingResult r) {
                      if (r.ok) {
                        std::printf(
                            "link %u<->%u: %.1f ms (rtt_x %.0f ms, rtt_y "
                            "%.0f ms, rtt_xy %.0f ms)\n",
                            x, y, r.link_latency_s * 1000, r.rtt_x_s * 1000,
                            r.rtt_y_s * 1000, r.rtt_xy_s * 1000);
                      } else {
                        std::printf("ting failed: %s\n", r.error.c_str());
                      }
                      done = true;
                    });
  scenario.loop().run_until_done([&] { return done; });

  tor::TingTargetView pt_view{true, false, "any pluggable transport"};
  std::printf("note: %s\n", tor::ting_pt_limitation(pt_view)->c_str());
  return 0;
}

int cmd_inventory(const CliArgs&) {
  stats::Table t({"name", "functional", "evaluated", "technology"});
  for (const pt::PtInventoryEntry& e : pt::pt_inventory()) {
    t.add_row({e.name, e.functional ? "yes" : "no",
               e.performance_evaluated ? "yes" : "no", e.technology});
  }
  std::printf("%s", t.to_text().c_str());
  pt::InventorySummary s = pt::summarize_inventory();
  std::printf("\n%zu systems, %zu evaluated, %zu functional\n", s.total,
              s.evaluated, s.functional);
  return 0;
}

int usage() {
  std::printf(
      "ptperf — Tor pluggable-transport performance harness (simulated)\n\n"
      "  ptperf campaign  [--pt NAME|all|tor] [--sites N] [--reps R]\n"
      "                   [--selenium] [--client BLR|LON|TORO] [--wireless]\n"
      "  ptperf files     [--pt NAME] [--sizes 5,10,50] [--reps R] [--overload]\n"
      "  ptperf stream    [--pt NAME] [--kbps K] [--seconds S]\n"
      "  ptperf ting      [--x RELAY --y RELAY]\n"
      "  ptperf inventory\n\n"
      "global: --seed N\n");
  return 1;
}

int dispatch(int argc, char** argv) {
  CliArgs args = parse(argc, argv);
  if (args.command == "campaign") return cmd_campaign(args);
  if (args.command == "files") return cmd_files(args);
  if (args.command == "stream") return cmd_stream(args);
  if (args.command == "ting") return cmd_ting(args);
  if (args.command == "inventory") return cmd_inventory(args);
  return usage();
}

}  // namespace
}  // namespace ptperf

int main(int argc, char** argv) { return ptperf::dispatch(argc, argv); }
