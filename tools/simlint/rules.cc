#include "rules.h"

#include <algorithm>
#include <initializer_list>
#include <string_view>

namespace simlint {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers

/// True if the file lives under any of the given directories (substring
/// match on the normalized path, so absolute and relative invocations both
/// work).
bool path_under(const FileScan& scan,
                std::initializer_list<std::string_view> dirs) {
  for (std::string_view d : dirs) {
    if (scan.norm_path.find(d) != std::string::npos) return true;
  }
  return false;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool ident_in(const Token& t, std::initializer_list<std::string_view> names) {
  if (t.kind != TokKind::kIdent) return false;
  for (std::string_view n : names) {
    if (t.text == n) return true;
  }
  return false;
}

/// True if token i is reached through member access (`x.f`, `p->f`): those
/// are our own methods that merely share a name with a banned C function.
bool member_access_before(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(toks[i - 1], ".")) return true;
  return i >= 2 && is_punct(toks[i - 1], ">") && is_punct(toks[i - 2], "-");
}

/// True if token i is a call (`name(...)`) that resolves to the global or
/// std:: function rather than a member or a project-namespace helper.
bool global_or_std_call(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) return false;
  if (member_access_before(toks, i)) return false;
  if (i >= 2 && is_punct(toks[i - 1], "::")) {
    // Qualified: only std::name (or chrono::name) is the banned entity; a
    // project namespace deliberately shadowing the name is fine.
    return ident_in(toks[i - 2], {"std", "chrono"});
  }
  return true;
}

void flag(std::vector<Finding>& out, const FileScan& scan, int line,
          const char* rule, std::string message) {
  out.push_back(Finding{scan.path, line, rule, std::move(message)});
}

/// Flags every use of the listed type/function identifiers (qualified or
/// not), skipping member accesses that merely reuse a name.
void ban_idents(const FileScan& scan, std::vector<Finding>& out,
                const char* rule, std::initializer_list<std::string_view> names,
                std::string_view why) {
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!ident_in(toks[i], names) || member_access_before(toks, i)) continue;
    flag(out, scan, toks[i].line, rule,
         "'" + toks[i].text + "' " + std::string(why));
  }
}

/// Flags calls to the listed free functions (global or std-qualified only).
void ban_calls(const FileScan& scan, std::vector<Finding>& out,
               const char* rule, std::initializer_list<std::string_view> names,
               std::string_view why) {
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!ident_in(toks[i], names) || !global_or_std_call(toks, i)) continue;
    flag(out, scan, toks[i].line, rule,
         "'" + toks[i].text + "()' " + std::string(why));
  }
}

void ban_includes(const FileScan& scan, std::vector<Finding>& out,
                  const char* rule,
                  std::initializer_list<std::string_view> targets,
                  std::string_view why) {
  for (const Token& t : scan.tokens) {
    if (t.kind != TokKind::kInclude) continue;
    for (std::string_view target : targets) {
      if (t.text == target)
        flag(out, scan, t.line, rule,
             "#include " + t.text + " " + std::string(why));
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-time — wall-clock sources corrupt same-seed replay. All
// simulation time must come from sim::TimePoint / the event loop.

constexpr std::string_view kTimeWhy =
    "reads wall-clock time; use sim::TimePoint from the event loop "
    "(src/sim/time.h) so runs replay bit-exactly";

void check_banned_time(const FileScan& scan, std::vector<Finding>& out) {
  if (path_under(scan, {"src/sim/time."})) return;
  ban_idents(scan, out, "banned-time",
             {"system_clock", "steady_clock", "high_resolution_clock",
              "file_clock", "utc_clock", "gettimeofday", "clock_gettime",
              "timespec_get", "localtime", "gmtime", "mktime"},
             kTimeWhy);
  ban_calls(scan, out, "banned-time", {"time", "clock"}, kTimeWhy);
  ban_includes(scan, out, "banned-time",
               {"<ctime>", "<time.h>", "<sys/time.h>"},
               "pulls in wall-clock APIs; virtual time only (src/sim/time.h)");
}

// ---------------------------------------------------------------------------
// Rule: banned-rng — ambient entropy breaks the root-seed contract. Every
// random draw must come from a stream forked off sim::Rng.

constexpr std::string_view kRngWhy =
    "is ambient randomness; derive a stream from the campaign's seeded "
    "sim::Rng (src/sim/rng.h) instead";

void check_banned_rng(const FileScan& scan, std::vector<Finding>& out) {
  if (path_under(scan, {"src/sim/rng."})) return;
  ban_idents(scan, out, "banned-rng",
             {"random_device", "mt19937", "mt19937_64", "minstd_rand",
              "minstd_rand0", "default_random_engine", "knuth_b", "ranlux24",
              "ranlux48", "random_shuffle", "shuffle",
              "uniform_int_distribution", "uniform_real_distribution",
              "normal_distribution", "lognormal_distribution",
              "bernoulli_distribution", "exponential_distribution",
              "poisson_distribution", "discrete_distribution"},
             kRngWhy);
  ban_calls(scan, out, "banned-rng", {"rand", "srand", "random", "drand48"},
            kRngWhy);
  ban_includes(scan, out, "banned-rng", {"<random>"},
               "provides ambient engines/distributions; use sim::Rng "
               "(src/sim/rng.h)");
}

// ---------------------------------------------------------------------------
// Rule: banned-thread — the simulation core must stay single-threaded so a
// shard's world is a pure function of its seed; threads would let real
// scheduling order leak into event order. All threading lives in the shard
// executor (src/ptperf/parallel.*) and the bench harness.

constexpr std::string_view kThreadWhy =
    "introduces real concurrency into the deterministic core; run work as "
    "shards via ptperf::ParallelExecutor (src/ptperf/parallel.h) instead";

void check_banned_thread(const FileScan& scan, std::vector<Finding>& out) {
  if (path_under(scan, {"src/ptperf/parallel", "bench/"})) return;
  ban_idents(scan, out, "banned-thread",
             {"thread", "jthread", "mutex", "recursive_mutex", "timed_mutex",
              "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
              "condition_variable", "condition_variable_any", "lock_guard",
              "unique_lock", "scoped_lock", "shared_lock", "future", "promise",
              "shared_future", "packaged_task", "latch", "barrier",
              "counting_semaphore", "binary_semaphore", "this_thread"},
             kThreadWhy);
  ban_calls(scan, out, "banned-thread", {"async", "pthread_create"},
            kThreadWhy);
  ban_includes(scan, out, "banned-thread",
               {"<thread>", "<mutex>", "<future>", "<condition_variable>",
                "<shared_mutex>", "<latch>", "<barrier>", "<semaphore>",
                "<pthread.h>"},
               "pulls in threading primitives; only src/ptperf/parallel.* "
               "and bench/ may spawn or synchronize threads");
}

// ---------------------------------------------------------------------------
// Rule: hash-container — unordered_{map,set} iteration order is
// implementation- and size-dependent, which leaks into event ordering and
// RNG draw order in the deterministic core. Banned outright there because a
// token scanner cannot prove a given instance is never iterated; suppress
// with a reason for genuinely lookup-only tables.

bool in_deterministic_core(const FileScan& scan) {
  return path_under(scan, {"src/sim/", "src/net/", "src/tor/", "src/fault/"});
}

void check_hash_container(const FileScan& scan, std::vector<Finding>& out) {
  if (!in_deterministic_core(scan)) return;
  ban_idents(scan, out, "hash-container",
             {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"},
             "has nondeterministic iteration order; use std::map/std::set "
             "or a sorted vector in the deterministic core");
}

// ---------------------------------------------------------------------------
// Rule: pointer-keyed-map — std::map/set ordered by pointer value iterate in
// allocation-address order, which varies run to run (ASLR, allocator state).

void check_pointer_keyed_map(const FileScan& scan, std::vector<Finding>& out) {
  if (!in_deterministic_core(scan)) return;
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!ident_in(toks[i], {"map", "set", "multimap", "multiset"})) continue;
    if (i < 2 || !is_punct(toks[i - 1], "::") ||
        !ident_in(toks[i - 2], {"std"}))
      continue;
    if (!is_punct(toks[i + 1], "<")) continue;
    // Scan the first template argument (up to a top-level ',' or the
    // closing '>') for a pointer declarator at any nesting depth.
    int depth = 1;
    for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
      const Token& t = toks[j];
      if (is_punct(t, "<")) ++depth;
      else if (is_punct(t, ">")) --depth;
      else if (is_punct(t, ",") && depth == 1) break;
      else if (is_punct(t, ";") || is_punct(t, "{")) break;  // malformed
      else if (is_punct(t, "*")) {
        flag(out, scan, toks[i].line, "pointer-keyed-map",
             "'std::" + toks[i].text +
                 "' keyed by a pointer iterates in allocation-address "
                 "order; key by a deterministic id (e.g. Channel::serial)");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-c — unbounded C string/parse functions; src/util has bounded,
// checked equivalents.

void check_unsafe_c(const FileScan& scan, std::vector<Finding>& out) {
  ban_calls(scan, out, "unsafe-c",
            {"strcpy", "strcat", "sprintf", "vsprintf", "gets", "strtok",
             "atoi", "atol", "atoll", "atof"},
            "is unbounded/unchecked; use the src/util helpers "
            "(util::parse_int / util::fmt_double / util::Bytes)");
}

// ---------------------------------------------------------------------------
// Rule: raw-instrumentation — ad-hoc printf/std::cerr telemetry in the
// library layer bypasses the flight recorder: it cannot merge across
// shards, is invisible to the exporters, and pollutes the byte-identical
// CSV contract. Only src/trace (the exporters themselves) and src/util
// (formatting helpers) may write to streams; everything else records
// spans/counters through trace::Recorder. snprintf (bounded, in-memory)
// stays legal everywhere. bench/ and tools/ are out of scope — they are
// the presentation layer.

constexpr std::string_view kInstrWhy =
    "is ad-hoc console instrumentation; record a span/counter through the "
    "flight recorder (src/trace/trace.h) so it merges deterministically "
    "across shards";

void check_raw_instrumentation(const FileScan& scan,
                               std::vector<Finding>& out) {
  if (!path_under(scan, {"src/"})) return;
  if (path_under(scan, {"src/trace/", "src/util/"})) return;
  ban_idents(scan, out, "raw-instrumentation", {"cout", "cerr", "clog"},
             kInstrWhy);
  ban_calls(scan, out, "raw-instrumentation",
            {"printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs",
             "putchar", "fputc", "perror"},
            kInstrWhy);
  ban_includes(scan, out, "raw-instrumentation", {"<iostream>"},
               "pulls in global stream objects; library code reports "
               "through the flight recorder (src/trace/trace.h)");
}

// ---------------------------------------------------------------------------
// Rule: transport-bypass — a directly constructed *Transport skips the PtId
// registry (src/ptperf/transports.cc), so the measured stack has no declared
// LayerStack, no validated layer composition, and no per-layer overhead
// ledger behind fig9. src/pt/ (the implementations themselves) and the
// registry are the only construction sites; tests are out of scope.

void check_transport_bypass(const FileScan& scan, std::vector<Finding>& out) {
  if (!path_under(scan, {"src/", "bench/"})) return;
  if (path_under(scan, {"src/pt/", "src/ptperf/transports"})) return;
  ban_idents(scan, out, "transport-bypass",
             {"Obfs4Transport", "MeekTransport", "SnowflakeTransport",
              "ConjureTransport", "PsiphonTransport", "DnsttTransport",
              "WebTunnelTransport", "CamouflerTransport", "CloakTransport",
              "StegotorusTransport", "MarionetteTransport",
              "ShadowsocksTransport", "MassbrowserTransport"},
             "bypasses the PtId registry; build stacks via "
             "TransportFactory::create (src/ptperf/transports.cc) so they "
             "carry a declared, validated LayerStack");
}

// ---------------------------------------------------------------------------
// Rule: ensemble-bypass — a figure bench that constructs ShardedCampaign
// directly sidesteps the ensemble layer: --repeats silently stops working
// for that figure and its conclusions regress to the single-seed trials
// the ensemble layer exists to retire. Figures go through
// bench/common (ensemble_config + EnsembleCampaign); bench/common itself
// and everything outside bench/ (the library, tests, tools) still compose
// the engines directly.

void check_ensemble_bypass(const FileScan& scan, std::vector<Finding>& out) {
  if (!path_under(scan, {"bench/"})) return;
  if (path_under(scan, {"bench/common"})) return;
  ban_idents(scan, out, "ensemble-bypass",
             {"ShardedCampaign", "ShardedCampaignConfig"},
             "bypasses the ensemble layer, so --repeats cannot replicate "
             "this figure; build the campaign via ensemble_config() and "
             "EnsembleCampaign (bench/common.h)");
}

// ---------------------------------------------------------------------------
// Rule: pragma-once — every header must have it (include-graph hygiene).

void check_pragma_once(const FileScan& scan, std::vector<Finding>& out) {
  if (!scan.is_header || scan.has_pragma_once) return;
  flag(out, scan, 1, "pragma-once", "header is missing '#pragma once'");
}

// ---------------------------------------------------------------------------
// Rule: using-namespace-header — a using-directive in a header leaks into
// every includer and can silently change overload resolution.

void check_using_namespace(const FileScan& scan, std::vector<Finding>& out) {
  if (!scan.is_header) return;
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (ident_in(toks[i], {"using"}) && ident_in(toks[i + 1], {"namespace"}))
      flag(out, scan, toks[i].line, "using-namespace-header",
           "'using namespace' in a header leaks into every includer");
  }
}

const std::vector<Rule> kRules = {
    {"banned-time", "wall-clock time sources outside src/sim/time.*",
     check_banned_time},
    {"banned-rng", "ambient randomness outside src/sim/rng.*",
     check_banned_rng},
    {"banned-thread",
     "threading primitives outside src/ptperf/parallel.* and bench/",
     check_banned_thread},
    {"hash-container",
     "unordered containers in the deterministic core (sim/net/tor/fault)",
     check_hash_container},
    {"pointer-keyed-map",
     "pointer-keyed std::map/std::set in the deterministic core",
     check_pointer_keyed_map},
    {"unsafe-c", "unbounded C string/parse functions", check_unsafe_c},
    {"raw-instrumentation",
     "printf/stream telemetry in src/ outside src/trace and src/util",
     check_raw_instrumentation},
    {"transport-bypass",
     "direct *Transport construction outside src/pt/ and the PtId registry",
     check_transport_bypass},
    {"ensemble-bypass",
     "direct ShardedCampaign construction in bench/ outside bench/common",
     check_ensemble_bypass},
    {"pragma-once", "headers must contain #pragma once", check_pragma_once},
    {"using-namespace-header", "no using-directives in headers",
     check_using_namespace},
};

}  // namespace

const std::vector<Rule>& rules() { return kRules; }

bool known_rule(const std::string& name) {
  if (name == "all") return true;
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const Rule& r) { return name == r.name; });
}

std::vector<Finding> lint_file(const FileScan& scan) {
  std::vector<Finding> raw;
  for (const Rule& rule : kRules) rule.check(scan, raw);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (const Suppression& s : scan.suppressions) {
      if (!s.parse_ok || !s.has_reason) continue;
      if (f.line != s.line && f.line != s.line + 1) continue;
      for (const std::string& r : s.rules) {
        if (r == "all" || r == f.rule) {
          suppressed = true;
          break;
        }
      }
      if (suppressed) break;
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  // A suppression that cannot take effect is itself a defect: it either
  // failed to parse, lacks the mandatory `-- reason`, or names an unknown
  // rule. These are never suppressible.
  for (const Suppression& s : scan.suppressions) {
    if (!s.parse_ok) {
      flag(out, scan, s.line, "bad-suppression",
           "malformed suppression; expected "
           "'simlint: allow(<rule>[, <rule>]) -- <reason>'");
      continue;
    }
    if (!s.has_reason) {
      flag(out, scan, s.line, "bad-suppression",
           "suppression is missing the mandatory '-- <reason>'");
    }
    for (const std::string& r : s.rules) {
      if (!known_rule(r))
        flag(out, scan, s.line, "bad-suppression",
             "suppression names unknown rule '" + r + "'");
    }
  }

  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace simlint
