#include "rules.h"

#include <algorithm>
#include <initializer_list>
#include <map>
#include <string_view>

#include "graph.h"
#include "project.h"

namespace simlint {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers

/// True if the file lives under any of the given directories (substring
/// match on the normalized path, so absolute and relative invocations both
/// work).
bool path_under(const FileScan& scan,
                std::initializer_list<std::string_view> dirs) {
  for (std::string_view d : dirs) {
    if (scan.norm_path.find(d) != std::string::npos) return true;
  }
  return false;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool ident_in(const Token& t, std::initializer_list<std::string_view> names) {
  if (t.kind != TokKind::kIdent) return false;
  for (std::string_view n : names) {
    if (t.text == n) return true;
  }
  return false;
}

/// True if token i is reached through member access (`x.f`, `p->f`): those
/// are our own methods that merely share a name with a banned C function.
bool member_access_before(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(toks[i - 1], ".")) return true;
  return i >= 2 && is_punct(toks[i - 1], ">") && is_punct(toks[i - 2], "-");
}

/// True if token i is a call (`name(...)`) that resolves to the global or
/// std:: function rather than a member or a project-namespace helper.
bool global_or_std_call(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) return false;
  if (member_access_before(toks, i)) return false;
  if (i >= 2 && is_punct(toks[i - 1], "::")) {
    // Qualified: only std::name (or chrono::name) is the banned entity; a
    // project namespace deliberately shadowing the name is fine.
    return ident_in(toks[i - 2], {"std", "chrono"});
  }
  return true;
}

void flag(std::vector<Finding>& out, const FileScan& scan, int line,
          const char* rule, std::string message) {
  out.push_back(Finding{scan.path, line, rule, std::move(message)});
}

/// Flags every use of the listed type/function identifiers (qualified or
/// not), skipping member accesses that merely reuse a name.
void ban_idents(const FileScan& scan, std::vector<Finding>& out,
                const char* rule, std::initializer_list<std::string_view> names,
                std::string_view why) {
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!ident_in(toks[i], names) || member_access_before(toks, i)) continue;
    flag(out, scan, toks[i].line, rule,
         "'" + toks[i].text + "' " + std::string(why));
  }
}

/// Flags calls to the listed free functions (global or std-qualified only).
void ban_calls(const FileScan& scan, std::vector<Finding>& out,
               const char* rule, std::initializer_list<std::string_view> names,
               std::string_view why) {
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!ident_in(toks[i], names) || !global_or_std_call(toks, i)) continue;
    flag(out, scan, toks[i].line, rule,
         "'" + toks[i].text + "()' " + std::string(why));
  }
}

void ban_includes(const FileScan& scan, std::vector<Finding>& out,
                  const char* rule,
                  std::initializer_list<std::string_view> targets,
                  std::string_view why) {
  for (const Token& t : scan.tokens) {
    if (t.kind != TokKind::kInclude) continue;
    for (std::string_view target : targets) {
      if (t.text == target)
        flag(out, scan, t.line, rule,
             "#include " + t.text + " " + std::string(why));
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-time — wall-clock sources corrupt same-seed replay. All
// simulation time must come from sim::TimePoint / the event loop.

constexpr std::string_view kTimeWhy =
    "reads wall-clock time; use sim::TimePoint from the event loop "
    "(src/sim/time.h) so runs replay bit-exactly";

void check_banned_time(const FileScan& scan, std::vector<Finding>& out) {
  if (path_under(scan, {"src/sim/time."})) return;
  ban_idents(scan, out, "banned-time",
             {"system_clock", "steady_clock", "high_resolution_clock",
              "file_clock", "utc_clock", "gettimeofday", "clock_gettime",
              "timespec_get", "localtime", "gmtime", "mktime"},
             kTimeWhy);
  ban_calls(scan, out, "banned-time", {"time", "clock"}, kTimeWhy);
  ban_includes(scan, out, "banned-time",
               {"<ctime>", "<time.h>", "<sys/time.h>"},
               "pulls in wall-clock APIs; virtual time only (src/sim/time.h)");
}

// ---------------------------------------------------------------------------
// Rule: banned-rng — ambient entropy breaks the root-seed contract. Every
// random draw must come from a stream forked off sim::Rng.

constexpr std::string_view kRngWhy =
    "is ambient randomness; derive a stream from the campaign's seeded "
    "sim::Rng (src/sim/rng.h) instead";

void check_banned_rng(const FileScan& scan, std::vector<Finding>& out) {
  if (path_under(scan, {"src/sim/rng."})) return;
  ban_idents(scan, out, "banned-rng",
             {"random_device", "mt19937", "mt19937_64", "minstd_rand",
              "minstd_rand0", "default_random_engine", "knuth_b", "ranlux24",
              "ranlux48", "random_shuffle", "shuffle",
              "uniform_int_distribution", "uniform_real_distribution",
              "normal_distribution", "lognormal_distribution",
              "bernoulli_distribution", "exponential_distribution",
              "poisson_distribution", "discrete_distribution"},
             kRngWhy);
  ban_calls(scan, out, "banned-rng", {"rand", "srand", "random", "drand48"},
            kRngWhy);
  ban_includes(scan, out, "banned-rng", {"<random>"},
               "provides ambient engines/distributions; use sim::Rng "
               "(src/sim/rng.h)");
}

// ---------------------------------------------------------------------------
// Rule: banned-thread — the simulation core must stay single-threaded so a
// shard's world is a pure function of its seed; threads would let real
// scheduling order leak into event order. All threading lives in the shard
// executor (src/ptperf/parallel.*) and the bench harness.

constexpr std::string_view kThreadWhy =
    "introduces real concurrency into the deterministic core; run work as "
    "shards via ptperf::ParallelExecutor (src/ptperf/parallel.h) instead";

void check_banned_thread(const FileScan& scan, std::vector<Finding>& out) {
  if (path_under(scan,
                 {"src/ptperf/parallel", "src/ptperf/checkpoint.", "bench/"}))
    return;
  ban_idents(scan, out, "banned-thread",
             {"thread", "jthread", "mutex", "recursive_mutex", "timed_mutex",
              "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
              "condition_variable", "condition_variable_any", "lock_guard",
              "unique_lock", "scoped_lock", "shared_lock", "future", "promise",
              "shared_future", "packaged_task", "latch", "barrier",
              "counting_semaphore", "binary_semaphore", "this_thread"},
             kThreadWhy);
  ban_calls(scan, out, "banned-thread", {"async", "pthread_create"},
            kThreadWhy);
  ban_includes(scan, out, "banned-thread",
               {"<thread>", "<mutex>", "<future>", "<condition_variable>",
                "<shared_mutex>", "<latch>", "<barrier>", "<semaphore>",
                "<pthread.h>"},
               "pulls in threading primitives; only src/ptperf/parallel.*, "
               "src/ptperf/checkpoint.* and bench/ may spawn or synchronize "
               "threads");
}

// ---------------------------------------------------------------------------
// Rule: hash-container — unordered_{map,set} iteration order is
// implementation- and size-dependent, which leaks into event ordering and
// RNG draw order in the deterministic core. Banned outright there because a
// token scanner cannot prove a given instance is never iterated; suppress
// with a reason for genuinely lookup-only tables.

bool in_deterministic_core(const FileScan& scan) {
  return path_under(scan, {"src/sim/", "src/net/", "src/tor/", "src/fault/"});
}

void check_hash_container(const FileScan& scan, std::vector<Finding>& out) {
  if (!in_deterministic_core(scan)) return;
  ban_idents(scan, out, "hash-container",
             {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"},
             "has nondeterministic iteration order; use std::map/std::set "
             "or a sorted vector in the deterministic core");
}

// ---------------------------------------------------------------------------
// Rule: pointer-keyed-map — std::map/set ordered by pointer value iterate in
// allocation-address order, which varies run to run (ASLR, allocator state).

void check_pointer_keyed_map(const FileScan& scan, std::vector<Finding>& out) {
  if (!in_deterministic_core(scan)) return;
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!ident_in(toks[i], {"map", "set", "multimap", "multiset"})) continue;
    if (i < 2 || !is_punct(toks[i - 1], "::") ||
        !ident_in(toks[i - 2], {"std"}))
      continue;
    if (!is_punct(toks[i + 1], "<")) continue;
    // Scan the first template argument (up to a top-level ',' or the
    // closing '>') for a pointer declarator at any nesting depth.
    int depth = 1;
    for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
      const Token& t = toks[j];
      if (is_punct(t, "<")) ++depth;
      else if (is_punct(t, ">")) --depth;
      else if (is_punct(t, ",") && depth == 1) break;
      else if (is_punct(t, ";") || is_punct(t, "{")) break;  // malformed
      else if (is_punct(t, "*")) {
        flag(out, scan, toks[i].line, "pointer-keyed-map",
             "'std::" + toks[i].text +
                 "' keyed by a pointer iterates in allocation-address "
                 "order; key by a deterministic id (e.g. Channel::serial)");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-c — unbounded C string/parse functions; src/util has bounded,
// checked equivalents.

void check_unsafe_c(const FileScan& scan, std::vector<Finding>& out) {
  ban_calls(scan, out, "unsafe-c",
            {"strcpy", "strcat", "sprintf", "vsprintf", "gets", "strtok",
             "atoi", "atol", "atoll", "atof"},
            "is unbounded/unchecked; use the src/util helpers "
            "(util::parse_int / util::fmt_double / util::Bytes)");
}

// ---------------------------------------------------------------------------
// Rule: hot-path-copy — the cell pipeline (the cell/onion/relay codecs and
// the crypto beneath them) moves every tunnel byte, so an owning
// util::Bytes allocation or a Reader copy there is a per-cell heap round
// trip the zero-copy buffer layer exists to remove. Views (BytesView /
// rest_view), pooled util::Buf and in-place spans are the sanctioned
// currencies; the copying surfaces that legitimately remain (legacy golden
// codecs, per-handshake key derivation) carry explicit allow-suppressions
// so a new copy cannot slip in silently.

bool in_cell_hot_path(const FileScan& scan) {
  return path_under(scan, {"src/tor/cell.cc", "src/tor/onion.cc",
                           "src/tor/relay.cc", "src/crypto/"});
}

void check_hot_path_copy(const FileScan& scan, std::vector<Finding>& out) {
  if (!in_cell_hot_path(scan) || scan.is_header) return;
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (ident_in(toks[i], {"take_copy", "rest"}) &&
        member_access_before(toks, i) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      flag(out, scan, toks[i].line, "hot-path-copy",
           "'" + toks[i].text +
               "()' copies the remaining bytes on the cell hot path; read "
               "through take()/rest_view() views (src/util/bytes.h) instead");
      continue;
    }
    if (ident_in(toks[i], {"Bytes"}) && !member_access_before(toks, i)) {
      // A reference to an existing buffer is not a construction.
      if (i + 1 < toks.size() && is_punct(toks[i + 1], "&")) continue;
      flag(out, scan, toks[i].line, "hot-path-copy",
           "'util::Bytes' on the cell hot path allocates an owning copy per "
           "cell; use util::BytesView / std::span views or a pooled "
           "util::Buf (src/util/buf.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-instrumentation — ad-hoc printf/std::cerr telemetry in the
// library layer bypasses the flight recorder: it cannot merge across
// shards, is invisible to the exporters, and pollutes the byte-identical
// CSV contract. Only src/trace (the exporters themselves) and src/util
// (formatting helpers) may write to streams; everything else records
// spans/counters through trace::Recorder. snprintf (bounded, in-memory)
// stays legal everywhere. bench/ and tools/ are out of scope — they are
// the presentation layer.

constexpr std::string_view kInstrWhy =
    "is ad-hoc console instrumentation; record a span/counter through the "
    "flight recorder (src/trace/trace.h) so it merges deterministically "
    "across shards";

void check_raw_instrumentation(const FileScan& scan,
                               std::vector<Finding>& out) {
  if (!path_under(scan, {"src/"})) return;
  if (path_under(scan, {"src/trace/", "src/util/"})) return;
  ban_idents(scan, out, "raw-instrumentation", {"cout", "cerr", "clog"},
             kInstrWhy);
  ban_calls(scan, out, "raw-instrumentation",
            {"printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs",
             "putchar", "fputc", "perror"},
            kInstrWhy);
  ban_includes(scan, out, "raw-instrumentation", {"<iostream>"},
               "pulls in global stream objects; library code reports "
               "through the flight recorder (src/trace/trace.h)");
}

// ---------------------------------------------------------------------------
// Rule: checkpoint-io — raw file writes in src/ptperf/ outside the snapshot
// store bypass its atomic temp+rename discipline: a crash mid-write would
// leave a torn file that --resume then trusts, and the byte-identity
// contract (docs/CHECKPOINTING.md) only holds for state that went through
// the versioned, checksummed snapshot codec. checkpoint.cc's
// atomic_write_file is the one sanctioned raw-file path in the engine
// layer; everything else persists state by handing bytes to the Store.

constexpr std::string_view kCheckpointIoWhy =
    "is raw file IO in the campaign engine; persist state through "
    "checkpoint::Store (src/ptperf/checkpoint.h) so writes stay atomic, "
    "checksummed and resumable";

void check_checkpoint_io(const FileScan& scan, std::vector<Finding>& out) {
  if (!path_under(scan, {"src/ptperf/"})) return;
  // Trailing dot: exactly checkpoint.{h,cc}, not e.g. checkpoint_io_*.
  if (path_under(scan, {"src/ptperf/checkpoint."})) return;
  ban_idents(scan, out, "checkpoint-io", {"ofstream", "fstream", "FILE"},
             kCheckpointIoWhy);
  ban_calls(scan, out, "checkpoint-io",
            {"fopen", "freopen", "fwrite", "open", "creat"},
            kCheckpointIoWhy);
  ban_includes(scan, out, "checkpoint-io",
               {"<fstream>", "<cstdio>", "<stdio.h>", "<fcntl.h>"},
               "pulls in raw file IO; only src/ptperf/checkpoint.* touches "
               "the filesystem in the engine layer (atomic temp+rename "
               "snapshot writes)");
}

// ---------------------------------------------------------------------------
// Rule: transport-bypass — a directly constructed *Transport skips the PtId
// registry (src/ptperf/transports.cc), so the measured stack has no declared
// LayerStack, no validated layer composition, and no per-layer overhead
// ledger behind fig9. src/pt/ (the implementations themselves) and the
// registry are the only construction sites; tests are out of scope.

void check_transport_bypass(const FileScan& scan, std::vector<Finding>& out) {
  if (!path_under(scan, {"src/", "bench/"})) return;
  // src/population/ names transport types only to apply operating points to
  // already-constructed stacks (population::apply_snowflake); it owns no
  // construction site.
  if (path_under(scan, {"src/pt/", "src/ptperf/transports", "src/population/"}))
    return;
  ban_idents(scan, out, "transport-bypass",
             {"Obfs4Transport", "MeekTransport", "SnowflakeTransport",
              "ConjureTransport", "PsiphonTransport", "DnsttTransport",
              "WebTunnelTransport", "CamouflerTransport", "CloakTransport",
              "StegotorusTransport", "MarionetteTransport",
              "ShadowsocksTransport", "MassbrowserTransport"},
             "bypasses the PtId registry; build stacks via "
             "TransportFactory::create (src/ptperf/transports.cc) so they "
             "carry a declared, validated LayerStack");
}

// ---------------------------------------------------------------------------
// Rule: load-bypass — a hand-set load knob (Network::set_background_load,
// SnowflakeTransport::set_overloaded) in bench/ or library code pins an
// operating point that the population engine is supposed to derive from
// simulated user demand: the figure silently stops responding to the
// demand model and regresses to the hard-coded constants the engine exists
// to retire. Load flows demand -> ContendedResource -> transport via
// src/population/ (apply_regime / apply_snowflake); the engine itself and
// the declaring classes are the only sanctioned callers, and legacy
// scenario-setup sites (static non-PT tenancy) carry reasoned
// suppressions. Unlike most ident bans, member accesses count here —
// `net.set_background_load(...)` IS the bypass.

void check_load_bypass(const FileScan& scan, std::vector<Finding>& out) {
  if (!path_under(scan, {"src/", "bench/"})) return;
  if (path_under(scan, {"src/population/", "src/net/resource.",
                        "src/net/network.", "src/pt/snowflake."}))
    return;
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!ident_in(toks[i], {"set_background_load", "set_overloaded"}))
      continue;
    flag(out, scan, toks[i].line, "load-bypass",
         "'" + toks[i].text +
             "' hand-sets a load knob the population engine owns; drive "
             "load through population::apply_regime / the demand model "
             "(src/population/contention.h) so figures stay anchored on "
             "emergent utilization");
  }
}

// ---------------------------------------------------------------------------
// Rule: ensemble-bypass — a figure bench that constructs ShardedCampaign
// directly sidesteps the ensemble layer: --repeats silently stops working
// for that figure and its conclusions regress to the single-seed trials
// the ensemble layer exists to retire. Figures go through
// bench/common (ensemble_config + EnsembleCampaign); bench/common itself
// and everything outside bench/ (the library, tests, tools) still compose
// the engines directly.

void check_ensemble_bypass(const FileScan& scan, std::vector<Finding>& out) {
  if (!path_under(scan, {"bench/"})) return;
  if (path_under(scan, {"bench/common"})) return;
  ban_idents(scan, out, "ensemble-bypass",
             {"ShardedCampaign", "ShardedCampaignConfig"},
             "bypasses the ensemble layer, so --repeats cannot replicate "
             "this figure; build the campaign via ensemble_config() and "
             "EnsembleCampaign (bench/common.h)");
}

// ---------------------------------------------------------------------------
// Rule: pragma-once — every header must have it (include-graph hygiene).

void check_pragma_once(const FileScan& scan, std::vector<Finding>& out) {
  if (!scan.is_header || scan.has_pragma_once) return;
  flag(out, scan, 1, "pragma-once", "header is missing '#pragma once'");
}

// ---------------------------------------------------------------------------
// Rule: using-namespace-header — a using-directive in a header leaks into
// every includer and can silently change overload resolution.

void check_using_namespace(const FileScan& scan, std::vector<Finding>& out) {
  if (!scan.is_header) return;
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (ident_in(toks[i], {"using"}) && ident_in(toks[i + 1], {"namespace"}))
      flag(out, scan, toks[i].line, "using-namespace-header",
           "'using namespace' in a header leaks into every includer");
  }
}

// ---------------------------------------------------------------------------
// Rule: include-cycle (project) — a cycle in the include graph means no
// layering assignment can exist for the files involved, and usually that a
// type boundary has dissolved. Reported once per cycle, anchored at the
// lexicographically first file's offending #include line.

void check_include_cycle(const ProjectContext& ctx,
                         std::vector<Finding>& out) {
  const Project& p = *ctx.project;
  for (const std::vector<int>& cycle : find_include_cycles(p)) {
    const ProjectFile& first = p.files()[static_cast<std::size_t>(cycle[0])];
    int next = cycle.size() > 1 ? cycle[1] : cycle[0];
    int line = 1;
    for (const auto& [to, inc_line] : first.includes) {
      if (to == next) {
        line = inc_line;
        break;
      }
    }
    std::string chain;
    for (int id : cycle) {
      chain += baseline_key_path(
          p.files()[static_cast<std::size_t>(id)].scan.norm_path);
      chain += " -> ";
    }
    chain += baseline_key_path(first.scan.norm_path);
    out.push_back(Finding{first.scan.path, line, "include-cycle",
                          "#include cycle: " + chain +
                              "; break it with a forward declaration or by "
                              "moving the shared type down a layer"});
  }
}

// ---------------------------------------------------------------------------
// Rule: layer-violation (project) — the declared layer DAG in
// tools/simlint/layers.conf says which module may include which; an edge
// outside the allow-list is an upward (or sideways) dependency that will
// calcify into a cycle. Only runs when a --layers config is provided.

void check_layer_violation(const ProjectContext& ctx,
                           std::vector<Finding>& out) {
  if (!ctx.layers || ctx.layers->empty()) return;
  const Project& p = *ctx.project;
  const LayerConfig& layers = *ctx.layers;
  for (const ProjectFile& f : p.files()) {
    if (f.module.empty()) continue;  // outside the modeled tree
    if (!layers.knows(f.module)) {
      out.push_back(Finding{f.scan.path, 1, "layer-violation",
                            "module '" + f.module +
                                "' is not declared in layers.conf; add it "
                                "to the layer DAG before adding code here"});
      continue;
    }
    for (const auto& [to, line] : f.includes) {
      const ProjectFile& g = p.files()[static_cast<std::size_t>(to)];
      if (g.module.empty() || !layers.allowed(f.module, g.module)) {
        if (g.module.empty()) continue;
        out.push_back(Finding{
            f.scan.path, line, "layer-violation",
            "include of '" + baseline_key_path(g.scan.norm_path) +
                "' reaches up the layer DAG (" + f.module + " may not "
                "depend on " + g.module + "; see tools/simlint/layers.conf)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration (project) — iterating an unordered container in
// a TU that also emits output (Table/CSV/trace writers) feeds hash-order
// into the byte-identical output contract. The deterministic core bans the
// containers outright (hash-container); everywhere else under src/ and
// bench/ they are legal for lookups, but the moment the same TU both
// iterates one and writes output, the iteration order can reach the bytes.
// The container may be declared in a header and iterated in the .cc — the
// taint set is the TU's include closure, which is why this is a project
// rule.

bool float_scope_stats(const std::string& module) {
  return module == "src/stats";
}

void check_unordered_iteration(const ProjectContext& ctx,
                               std::vector<Finding>& out) {
  const Project& p = *ctx.project;
  for (std::size_t id = 0; id < p.files().size(); ++id) {
    const ProjectFile& f = p.files()[id];
    if (f.scan.is_header) continue;  // TU view: checks anchor at the .cc
    bool in_scope = (f.module.rfind("src/", 0) == 0 || f.module == "bench");
    if (!in_scope || in_deterministic_core(f.scan)) continue;
    if (!f.summary.emits_output) continue;
    FileSummary closure = p.closure_summary(static_cast<int>(id));
    if (closure.unordered_idents.empty()) continue;
    const auto& tainted = closure.unordered_idents;
    auto is_tainted = [&](const Token& t) {
      return t.kind == TokKind::kIdent &&
             std::binary_search(tainted.begin(), tainted.end(), t.text);
    };
    const auto& toks = f.scan.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      // Range-for whose range expression names a tainted container.
      if (ident_in(toks[i], {"for"}) && is_punct(toks[i + 1], "(")) {
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (is_punct(toks[j], "(")) ++depth;
          else if (is_punct(toks[j], ")")) {
            if (--depth == 0) break;
          } else if (is_punct(toks[j], ":") && depth == 1 && !colon) {
            colon = j;
          }
        }
        if (colon) {
          int d = 1;
          for (std::size_t j = colon + 1; j < toks.size() && d > 0; ++j) {
            if (is_punct(toks[j], "(")) ++d;
            else if (is_punct(toks[j], ")")) --d;
            else if (d == 1 && is_tainted(toks[j])) {
              flag(out, f.scan, toks[i].line, "unordered-iteration",
                   "iterates '" + toks[j].text +
                       "' (unordered_*) in a TU that emits output; hash "
                       "order reaches the byte-identical outputs — use an "
                       "ordered container or sort before emitting");
              break;
            }
          }
        }
        continue;
      }
      // Explicit iterator walk: tainted.begin() / cbegin(). Deliberately not
      // end() — `it != m.end()` after a find() is the lookup idiom.
      if (is_tainted(toks[i]) && is_punct(toks[i + 1], ".") &&
          i + 2 < toks.size() && ident_in(toks[i + 2], {"begin", "cbegin"})) {
        flag(out, f.scan, toks[i].line, "unordered-iteration",
             "iterates '" + toks[i].text +
                 "' (unordered_*) in a TU that emits output; hash order "
                 "reaches the byte-identical outputs — use an ordered "
                 "container or sort before emitting");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-eq (project) — exact floating-point ==/!= in src/stats. The
// statistics layer is the last stop before CSV bytes; an exact comparison
// there is sensitive to FMA contraction, excess precision and evaluation
// order, i.e. to the compiler rather than the seed. Operand typing comes
// from the TU closure's declared double/float names plus floating literals.

bool float_literal(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  if (t.text.rfind("0x", 0) == 0 || t.text.rfind("0X", 0) == 0) return false;
  return t.text.find('.') != std::string::npos ||
         t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos;
}

void check_float_eq(const ProjectContext& ctx, std::vector<Finding>& out) {
  const Project& p = *ctx.project;
  for (std::size_t id = 0; id < p.files().size(); ++id) {
    const ProjectFile& f = p.files()[id];
    if (!float_scope_stats(f.module)) continue;
    FileSummary closure = p.closure_summary(static_cast<int>(id));
    const auto& floats = closure.float_idents;
    auto float_operand = [&](const Token& t) {
      if (float_literal(t)) return true;
      return t.kind == TokKind::kIdent &&
             std::binary_search(floats.begin(), floats.end(), t.text);
    };
    const auto& toks = f.scan.tokens;
    for (std::size_t i = 1; i + 2 < toks.size(); ++i) {
      bool eq = is_punct(toks[i], "=") && is_punct(toks[i + 1], "=");
      bool ne = is_punct(toks[i], "!") && is_punct(toks[i + 1], "=");
      if (!eq && !ne) continue;
      if (i >= 2 && is_punct(toks[i - 1], "=")) continue;  // second '=' of ==
      const Token& lhs = toks[i - 1];
      const Token& rhs = toks[i + 2];
      if (!float_operand(lhs) && !float_operand(rhs)) continue;
      flag(out, f.scan, toks[i].line, "float-eq",
           std::string("floating-point '") + (eq ? "==" : "!=") +
               "' is exact-representation comparison, fragile under FMA "
               "and excess precision; compare with an explicit tolerance "
               "or restructure around integers");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: switch-exhaustive (project) — a switch over PtId or CarrierKind
// that neither covers every enumerator nor has a default silently drops the
// next transport or carrier someone adds: it compiles, runs, and emits a
// figure missing a row. The enumerator lists come from the project model
// (src/ptperf/transports.h, src/pt/layer/layer.h), so the rule tightens
// itself when an enumerator is added.

constexpr std::string_view kGuardedEnums[] = {"PtId", "CarrierKind"};

bool guarded_enum(const std::string& name) {
  for (std::string_view e : kGuardedEnums) {
    if (name == e) return true;
  }
  return false;
}

void check_switch_exhaustive(const ProjectContext& ctx,
                             std::vector<Finding>& out) {
  const Project& p = *ctx.project;
  for (const ProjectFile& f : p.files()) {
    const auto& toks = f.scan.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!ident_in(toks[i], {"switch"}) || !is_punct(toks[i + 1], "(")) {
        continue;
      }
      // Find the body braces.
      int depth = 0;
      std::size_t body = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        else if (is_punct(toks[j], ")")) {
          if (--depth == 0) {
            if (j + 1 < toks.size() && is_punct(toks[j + 1], "{")) {
              body = j + 1;
            }
            break;
          }
        }
      }
      if (!body) continue;
      // Walk the body, collecting `case Enum::member` labels and `default`.
      std::map<std::string, std::vector<std::string>> cases;
      bool has_default = false;
      depth = 0;
      std::size_t j = body;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "{")) ++depth;
        else if (is_punct(toks[j], "}")) {
          if (--depth == 0) break;
        } else if (ident_in(toks[j], {"default"}) && j + 1 < toks.size() &&
                   is_punct(toks[j + 1], ":")) {
          has_default = true;
        } else if (ident_in(toks[j], {"case"})) {
          // Scan the label up to its ':' for a `<Enum> :: <member>` pair.
          for (std::size_t k = j + 1; k + 2 < toks.size(); ++k) {
            if (is_punct(toks[k], ":")) break;
            if (toks[k].kind == TokKind::kIdent &&
                guarded_enum(toks[k].text) &&
                is_punct(toks[k + 1], "::") &&
                toks[k + 2].kind == TokKind::kIdent) {
              auto& seen = cases[toks[k].text];
              if (std::find(seen.begin(), seen.end(), toks[k + 2].text) ==
                  seen.end()) {
                seen.push_back(toks[k + 2].text);
              }
            }
          }
        }
      }
      if (has_default) continue;
      for (const auto& [enum_name, covered] : cases) {
        const std::vector<std::string>* members = p.enum_members(enum_name);
        if (!members) continue;  // enum not defined in the scanned set
        std::vector<std::string> missing;
        for (const std::string& m : *members) {
          if (std::find(covered.begin(), covered.end(), m) == covered.end()) {
            missing.push_back(m);
          }
        }
        if (missing.empty()) continue;
        std::string names;
        for (std::size_t m = 0; m < missing.size(); ++m) {
          if (m) names += ", ";
          names += missing[m];
        }
        flag(out, f.scan, toks[i].line, "switch-exhaustive",
             "switch over " + enum_name + " covers " +
                 std::to_string(covered.size()) + " of " +
                 std::to_string(members->size()) +
                 " enumerators and has no default (missing: " + names +
                 "); new variants would be silently dropped");
      }
    }
  }
}

const std::vector<Rule> kRules = {
    {"banned-time", "wall-clock time sources outside src/sim/time.*",
     check_banned_time, nullptr},
    {"banned-rng", "ambient randomness outside src/sim/rng.*",
     check_banned_rng, nullptr},
    {"banned-thread",
     "threading primitives outside src/ptperf/parallel.* and bench/",
     check_banned_thread, nullptr},
    {"hash-container",
     "unordered containers in the deterministic core (sim/net/tor/fault)",
     check_hash_container, nullptr},
    {"pointer-keyed-map",
     "pointer-keyed std::map/std::set in the deterministic core",
     check_pointer_keyed_map, nullptr},
    {"unsafe-c", "unbounded C string/parse functions", check_unsafe_c,
     nullptr},
    {"hot-path-copy",
     "owning byte copies on the cell hot path (tor cell/onion/relay codecs "
     "and src/crypto)",
     check_hot_path_copy, nullptr},
    {"raw-instrumentation",
     "printf/stream telemetry in src/ outside src/trace and src/util",
     check_raw_instrumentation, nullptr},
    {"checkpoint-io",
     "raw file IO in src/ptperf outside the checkpoint.* snapshot store",
     check_checkpoint_io, nullptr},
    {"transport-bypass",
     "direct *Transport construction outside src/pt/ and the PtId registry",
     check_transport_bypass, nullptr},
    {"load-bypass",
     "hand-set load knobs (set_background_load/set_overloaded) outside the "
     "population engine",
     check_load_bypass, nullptr},
    {"ensemble-bypass",
     "direct ShardedCampaign construction in bench/ outside bench/common",
     check_ensemble_bypass, nullptr},
    {"pragma-once", "headers must contain #pragma once", check_pragma_once,
     nullptr},
    {"using-namespace-header", "no using-directives in headers",
     check_using_namespace, nullptr},
    {"include-cycle", "cycles in the project include graph", nullptr,
     check_include_cycle},
    {"layer-violation",
     "include edges outside the declared layer DAG (layers.conf)", nullptr,
     check_layer_violation},
    {"unordered-iteration",
     "unordered container iteration in a TU that emits output", nullptr,
     check_unordered_iteration},
    {"float-eq", "exact floating-point ==/!= in src/stats", nullptr,
     check_float_eq},
    {"switch-exhaustive",
     "non-exhaustive switch over PtId/CarrierKind without default", nullptr,
     check_switch_exhaustive},
    {"unused-suppression",
     "allow-suppressions that no longer match any finding", nullptr, nullptr},
    {"bad-suppression", "malformed or reason-less allow-suppressions",
     nullptr, nullptr},
};

/// Rules whose findings are never themselves suppressible: the suppression
/// hygiene rules (a waiver cannot waive waiver defects).
bool suppressible(const std::string& rule) {
  return rule != "bad-suppression" && rule != "unused-suppression";
}

}  // namespace

const std::vector<Rule>& rules() { return kRules; }

bool known_rule(const std::string& name) {
  if (name == "all") return true;
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const Rule& r) { return name == r.name; });
}

std::vector<Finding> lint_project(const ProjectContext& ctx) {
  const Project& p = *ctx.project;

  std::vector<Finding> raw;
  for (const ProjectFile& f : p.files()) {
    for (const Rule& rule : kRules) {
      if (rule.check) rule.check(f.scan, raw);
    }
  }
  for (const Rule& rule : kRules) {
    if (rule.project_check) rule.project_check(ctx, raw);
  }

  // Suppression filtering, per owning file. A suppression is "used" once it
  // absorbs at least one finding; the rest become unused-suppression
  // findings below, so the waiver set can only shrink.
  std::map<std::string, const ProjectFile*> by_path;
  for (const ProjectFile& f : p.files()) by_path[f.scan.path] = &f;
  std::map<std::pair<std::string, int>, bool> suppression_used;

  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    auto it = by_path.find(f.file);
    if (it != by_path.end() && suppressible(f.rule)) {
      for (const Suppression& s : it->second->scan.suppressions) {
        if (!s.parse_ok || !s.has_reason) continue;
        if (f.line != s.line && f.line != s.line + 1) continue;
        for (const std::string& r : s.rules) {
          if (r == "all" || r == f.rule) {
            suppressed = true;
            suppression_used[{f.file, s.line}] = true;
            break;
          }
        }
        if (suppressed) break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  for (const ProjectFile& pf : p.files()) {
    const FileScan& scan = pf.scan;
    for (const Suppression& s : scan.suppressions) {
      // A suppression that cannot take effect is itself a defect: it either
      // failed to parse, lacks the mandatory `-- reason`, or names an
      // unknown rule.
      if (!s.parse_ok) {
        flag(out, scan, s.line, "bad-suppression",
             "malformed suppression; expected "
             "'simlint: allow(<rule>[, <rule>]) -- <reason>'");
        continue;
      }
      bool well_formed = s.has_reason;
      if (!s.has_reason) {
        flag(out, scan, s.line, "bad-suppression",
             "suppression is missing the mandatory '-- <reason>'");
      }
      for (const std::string& r : s.rules) {
        if (!known_rule(r)) {
          well_formed = false;
          flag(out, scan, s.line, "bad-suppression",
               "suppression names unknown rule '" + r + "'");
        }
      }
      // A well-formed suppression that matched nothing is stale: the code
      // it waived was fixed or moved, so the waiver must be deleted.
      if (well_formed && !suppression_used[{scan.path, s.line}]) {
        std::string names;
        for (std::size_t i = 0; i < s.rules.size(); ++i) {
          if (i) names += ", ";
          names += s.rules[i];
        }
        flag(out, scan, s.line, "unused-suppression",
             "suppression for (" + names +
                 ") no longer matches any finding; delete it — the waiver "
                 "set may only shrink");
      }
    }
  }

  std::sort(out.begin(), out.end());
  // Identical (file, line, rule, message) findings collapse to one report:
  // `a.begin()`/`a.end()` in one loop header are one defect, not two.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace simlint
