#include "sarif.h"

#include <map>

#include "json.h"
#include "project.h"

namespace simlint {

std::string to_sarif(const std::vector<Finding>& findings) {
  const std::vector<Rule>& all = rules();
  std::map<std::string, int> rule_index;
  for (std::size_t i = 0; i < all.size(); ++i) {
    rule_index[all[i].name] = static_cast<int>(i);
  }

  std::string out;
  out += "{\n";
  out +=
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"simlint\",\n";
  out +=
      "          \"informationUri\": "
      "\"https://example.invalid/ptperf/tools/simlint\",\n";
  out += "          \"rules\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    out += "            {\"id\": \"" + json::escape(all[i].name) +
           "\", \"shortDescription\": {\"text\": \"" +
           json::escape(all[i].summary) + "\"}}";
    out += i + 1 < all.size() ? ",\n" : "\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json::escape(f.rule) + "\",\n";
    out += "          \"ruleIndex\": " +
           std::to_string(rule_index.count(f.rule) ? rule_index[f.rule] : 0) +
           ",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json::escape(f.message) +
           "\"},\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": {\"uri\": \"" +
           json::escape(baseline_key_path(normalize_path(f.file))) +
           "\"},\n";
    out += "                \"region\": {\"startLine\": " +
           std::to_string(f.line > 0 ? f.line : 1) + "}\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ]\n";
    out += "        }";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace simlint
