// simlint rule registry. Each rule is a named check over one tokenized file;
// adding an invariant means writing one ~20-line check function and one
// registry entry. Rules report Findings; allow-suppression filtering happens
// in lint_file so individual checks never have to think about it.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace simlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  }
};

struct Rule {
  const char* name;
  const char* summary;
  void (*check)(const FileScan&, std::vector<Finding>&);
};

/// All registered rules, in reporting order.
const std::vector<Rule>& rules();

/// True if `name` names a registered rule.
bool known_rule(const std::string& name);

/// Runs every rule over `scan` and filters out suppressed findings.
/// Malformed or reason-less suppressions surface as `bad-suppression`
/// findings, which are never themselves suppressible.
std::vector<Finding> lint_file(const FileScan& scan);

}  // namespace simlint
