// simlint rule registry. v2 distinguishes two rule shapes:
//
//   * per-file checks — one pass over a tokenized file, as in v1;
//   * project checks — run once over the whole Project model (include
//     graph, layer config, cross-file symbol summaries), so a rule can see
//     an #include cycle, an upward dependency, or an unordered container
//     declared in a header and iterated in a .cc.
//
// Both report Findings. Suppression filtering and the suppression-hygiene
// rules (bad-suppression, unused-suppression) live in lint_project so
// individual checks never think about waivers — and so a waiver that stops
// matching anything becomes an error itself, keeping the set shrink-only.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace simlint {

class Project;
class LayerConfig;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  }
};

/// Everything a project-level rule may consult. `layers` is null when no
/// --layers config was given (architecture conformance is then skipped;
/// cycle detection still runs — a cycle is wrong under every layering).
struct ProjectContext {
  const Project* project = nullptr;
  const LayerConfig* layers = nullptr;
};

struct Rule {
  const char* name;
  const char* summary;
  /// Per-file check; null for project-only rules.
  void (*check)(const FileScan&, std::vector<Finding>&);
  /// Whole-project check; null for file-only rules.
  void (*project_check)(const ProjectContext&, std::vector<Finding>&);
};

/// All registered rules, in reporting order.
const std::vector<Rule>& rules();

/// True if `name` names a registered rule.
bool known_rule(const std::string& name);

/// Runs every rule over the whole project, applies allow-suppressions,
/// surfaces suppression hygiene defects, and returns the sorted findings.
std::vector<Finding> lint_project(const ProjectContext& ctx);

}  // namespace simlint
