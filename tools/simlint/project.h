// Project model for simlint v2: everything the cross-file rules need, built
// exactly once per run from the token streams the lexer already produces.
//
//   * a sorted file index over every scanned file,
//   * preprocessor-lite include resolution — a quoted #include is resolved
//     against the includer's directory and then against each root directory
//     named on the command line (mirroring -I<root> semantics; angle
//     includes are system headers and never resolve to project files),
//   * the resulting include graph (adjacency by file id, edges carry the
//     source line so findings are clickable),
//   * a per-file symbol/type summary: identifiers declared with a floating
//     type, identifiers declared as unordered_* containers, whether the
//     file emits output (Table/CSV/stream writes), and every `enum class`
//     definition with its enumerator list.
//
// The model is resolution-by-index, not by filesystem probing: an include
// only produces an edge if its target is one of the scanned files, so runs
// are hermetic and order-independent.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace simlint {

/// What the taint rules need to know about one file in isolation.
struct FileSummary {
  std::vector<std::string> float_idents;      // declared double/float names
  std::vector<std::string> unordered_idents;  // declared unordered_* names
  bool emits_output = false;                  // Table / ofstream / fopen …
  /// enum-class definitions: name -> enumerator names, in declaration order.
  std::vector<std::pair<std::string, std::vector<std::string>>> enums;
};

struct ProjectFile {
  FileScan scan;
  std::string module;          // e.g. "src/net", "bench", "tools"; "" unknown
  FileSummary summary;
  /// Resolved project-internal includes: (target file id, include line).
  std::vector<std::pair<int, int>> includes;
};

class Project {
 public:
  /// Builds the model. `roots` are the directories given on the command
  /// line (used as include search roots); files are indexed by normalized
  /// path in sorted order so ids are deterministic.
  static Project build(std::vector<FileScan> scans,
                       std::vector<std::string> roots);

  const std::vector<ProjectFile>& files() const { return files_; }
  const std::vector<std::string>& roots() const { return roots_; }

  /// Index of the file with this normalized path, or -1.
  int index_of(const std::string& norm_path) const;

  /// Union of FileSummary over `id` and its transitive project includes —
  /// the translation-unit view the taint rules reason about.
  FileSummary closure_summary(int id) const;

  /// Project-wide enumerator list for `enum class name`, or null if no
  /// scanned file defines it. First definition in file-id order wins.
  const std::vector<std::string>* enum_members(const std::string& name) const;

 private:
  std::vector<ProjectFile> files_;
  std::vector<std::string> roots_;
  std::vector<std::pair<std::string, std::vector<std::string>>> enums_;
};

/// Lexically normalizes a '/'-separated path: folds "//", "." and ".."
/// (without touching the filesystem). "a/b/../c" -> "a/c".
std::string normalize_path(const std::string& path);

/// Module of a normalized path: the last "src/<dir>" component pair, or the
/// last "bench"/"tools"/"tests" component, or "" if none matches. Matching
/// from the right makes fixture trees that embed an src/-shaped layout
/// behave exactly like the real tree.
std::string module_of(const std::string& norm_path);

/// Stable repo-relative form used by baselines and SARIF: the path suffix
/// starting at the last "src"/"bench"/"tools"/"tests" component, so absolute
/// and relative invocations produce identical keys.
std::string baseline_key_path(const std::string& norm_path);

/// Extracts the per-file summary from a token stream. Exposed for tests.
FileSummary summarize_file(const FileScan& scan);

}  // namespace simlint
