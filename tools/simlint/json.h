// Minimal JSON support for the linter — a strict recursive-descent parser (for
// --baseline files and for structural validation of our own SARIF output in
// tests) plus the escape helper every writer shares. Object keys keep
// insertion order so round-trips and error messages stay deterministic.
// Dependency-free by design, like the rest of the tool.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace simlint::json {

class Value;

/// JSON value as a closed sum. Arrays/objects own their children.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; null if absent or not an object.
  const Value* get(const std::string& key) const;
  /// get() that also requires the member to have the given kind.
  const Value* get(const std::string& key, Kind kind) const;
};

/// Parses `text` into `*out`. Returns false and fills `*error` (with a
/// 1-based line number) on malformed input or trailing garbage.
bool parse(const std::string& text, Value* out, std::string* error);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(const std::string& s);

}  // namespace simlint::json
