#include "json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace simlint::json {

const Value* Value::get(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value* Value::get(const std::string& key, Kind want) const {
  const Value* v = get(key);
  return v && v->kind == want ? v : nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : src_(text), error_(error) {}

  bool run(Value* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != src_.size()) return fail("trailing garbage after document");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_ && error_->empty()) {
      *error_ = "json: line " + std::to_string(line_) + ": " + why;
    }
    return false;
  }

  char cur() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }

  void advance() {
    if (cur() == '\n') ++line_;
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < src_.size()) {
      char c = cur();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (src_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool value(Value* out) {
    switch (cur()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out->kind = Value::Kind::kString;
        return string(&out->str);
      case 't':
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return literal("false", 5);
      case 'n':
        out->kind = Value::Kind::kNull;
        return literal("null", 4);
      default: return number(out);
    }
  }

  bool object(Value* out) {
    out->kind = Value::Kind::kObject;
    advance();  // '{'
    skip_ws();
    if (cur() == '}') {
      advance();
      return true;
    }
    while (true) {
      skip_ws();
      if (cur() != '"') return fail("expected object key");
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (cur() != ':') return fail("expected ':' after key");
      advance();
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (cur() == ',') {
        advance();
        continue;
      }
      if (cur() == '}') {
        advance();
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(Value* out) {
    out->kind = Value::Kind::kArray;
    advance();  // '['
    skip_ws();
    if (cur() == ']') {
      advance();
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (cur() == ',') {
        advance();
        continue;
      }
      if (cur() == ']') {
        advance();
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string(std::string* out) {
    advance();  // opening quote
    while (true) {
      if (pos_ >= src_.size()) return fail("unterminated string");
      char c = cur();
      if (c == '"') {
        advance();
        return true;
      }
      if (c == '\\') {
        advance();
        switch (cur()) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              advance();
              char h = cur();
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return fail("bad \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         std::isdigit(static_cast<unsigned char>(h))
                             ? h - '0'
                             : std::tolower(static_cast<unsigned char>(h)) -
                                   'a' + 10);
            }
            // UTF-8 encode (surrogate pairs are passed through unpaired;
            // baseline/SARIF content is ASCII in practice).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("bad escape character");
        }
        advance();
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out->push_back(c);
      advance();
    }
  }

  bool number(Value* out) {
    std::size_t start = pos_;
    if (cur() == '-') advance();
    if (!std::isdigit(static_cast<unsigned char>(cur()))) {
      return fail("expected value");
    }
    while (std::isdigit(static_cast<unsigned char>(cur()))) advance();
    if (cur() == '.') {
      advance();
      while (std::isdigit(static_cast<unsigned char>(cur()))) advance();
    }
    if (cur() == 'e' || cur() == 'E') {
      advance();
      if (cur() == '+' || cur() == '-') advance();
      while (std::isdigit(static_cast<unsigned char>(cur()))) advance();
    }
    out->kind = Value::Kind::kNumber;
    out->number = std::strtod(src_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& src_;
  std::string* error_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run(out);
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace simlint::json
