#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace simlint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True for the encoding prefixes that may introduce a raw string literal.
bool raw_string_prefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR";
}

/// Parses an allow-suppression (comma-separated rule list, then a reason
/// after a double dash) out of a comment body. Returns false if the comment
/// contains no simlint marker at all.
bool parse_suppression(const std::string& comment, int line, Suppression* out) {
  std::size_t marker = comment.find("simlint:");
  // "simlint::" is the C++ namespace (e.g. a closing-brace comment), not a
  // suppression marker.
  while (marker != std::string::npos && marker + 8 < comment.size() &&
         comment[marker + 8] == ':') {
    marker = comment.find("simlint:", marker + 9);
  }
  if (marker == std::string::npos) return false;
  out->line = line;

  std::size_t pos = marker + 8;
  while (pos < comment.size() && comment[pos] == ' ') ++pos;
  if (comment.compare(pos, 6, "allow(") != 0) return true;  // malformed
  pos += 6;
  std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return true;  // malformed

  std::string name;
  for (std::size_t i = pos; i <= close; ++i) {
    char c = i < close ? comment[i] : ',';
    if (c == ',' ) {
      if (!name.empty()) out->rules.push_back(name);
      name.clear();
    } else if (c != ' ') {
      name.push_back(c);
    }
  }
  out->parse_ok = !out->rules.empty();
  out->has_reason = comment.find("--", close) != std::string::npos &&
                    comment.find_first_not_of(" -", comment.find("--", close)) !=
                        std::string::npos;
  return true;
}

class Lexer {
 public:
  Lexer(const std::string& src, FileScan* out) : src_(src), out_(out) {}

  void run() {
    while (pos_ < src_.size()) step();
  }

 private:
  char cur() const { return src_[pos_]; }
  char peek(std::size_t n = 1) const {
    return pos_ + n < src_.size() ? src_[pos_ + n] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      at_line_start_ = true;
    }
    ++pos_;
  }

  void emit(TokKind kind, std::string text, int line) {
    out_->tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    char c = cur();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
        c == '\f') {
      advance();
      return;
    }
    if (c == '\\' && peek() == '\n') {  // line continuation
      advance();
      advance();
      return;
    }
    if (c == '/' && peek() == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek() == '*') {
      block_comment();
      return;
    }
    if (c == '#' && at_line_start_) {
      directive();
      return;
    }
    at_line_start_ = false;
    if (c == '"') {
      string_literal("\"");
      return;
    }
    if (c == '\'') {
      string_literal("'");
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
      number();
      return;
    }
    if (c == ':' && peek() == ':') {
      emit(TokKind::kPunct, "::", line_);
      advance();
      advance();
      return;
    }
    emit(TokKind::kPunct, std::string(1, c), line_);
    advance();
  }

  void line_comment() {
    int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && cur() != '\n') {
      text.push_back(cur());
      advance();
    }
    note_comment(text, start_line);
  }

  void block_comment() {
    int start_line = line_;
    std::string text;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < src_.size()) {
      if (cur() == '*' && peek() == '/') {
        advance();
        advance();
        break;
      }
      text.push_back(cur());
      advance();
    }
    note_comment(text, start_line);
  }

  void note_comment(const std::string& text, int start_line) {
    Suppression s;
    if (parse_suppression(text, start_line, &s))
      out_->suppressions.push_back(std::move(s));
  }

  /// `#` at the start of a line. Handles `#pragma once` and captures the
  /// `#include` target; all other directives fall through to normal lexing
  /// so rules still see tokens inside macro definitions.
  void directive() {
    at_line_start_ = false;
    advance();  // '#'
    while (pos_ < src_.size() && (cur() == ' ' || cur() == '\t')) advance();
    std::string name;
    while (pos_ < src_.size() && ident_char(cur())) {
      name.push_back(cur());
      advance();
    }
    if (name == "include") {
      while (pos_ < src_.size() && (cur() == ' ' || cur() == '\t')) advance();
      if (pos_ < src_.size() && (cur() == '<' || cur() == '"')) {
        char open = cur();
        char close = open == '<' ? '>' : '"';
        std::string target(1, open);
        advance();
        while (pos_ < src_.size() && cur() != close && cur() != '\n') {
          target.push_back(cur());
          advance();
        }
        if (pos_ < src_.size() && cur() == close) {
          target.push_back(close);
          advance();
        }
        emit(TokKind::kInclude, std::move(target), line_);
      }
      return;
    }
    if (name == "pragma") {
      std::size_t save = pos_;
      while (pos_ < src_.size() && (cur() == ' ' || cur() == '\t')) advance();
      std::string what;
      while (pos_ < src_.size() && ident_char(cur())) {
        what.push_back(cur());
        advance();
      }
      if (what == "once") {
        out_->has_pragma_once = true;
        return;
      }
      pos_ = save;  // unknown pragma: lex its tokens normally
    }
  }

  void string_literal(const char* quote) {
    int start_line = line_;
    char q = quote[0];
    std::string text;
    advance();  // opening quote
    while (pos_ < src_.size() && cur() != q && cur() != '\n') {
      if (cur() == '\\') {
        text.push_back(cur());
        advance();
        if (pos_ >= src_.size()) break;
      }
      text.push_back(cur());
      advance();
    }
    if (pos_ < src_.size() && cur() == q) advance();
    emit(TokKind::kString, std::move(text), start_line);
  }

  void raw_string() {
    int start_line = line_;
    advance();  // opening '"'
    std::string delim;
    while (pos_ < src_.size() && cur() != '(') {
      delim.push_back(cur());
      advance();
    }
    std::string closer = ")" + delim + "\"";
    std::size_t end = src_.find(closer, pos_);
    std::string text;
    if (end == std::string::npos) {
      end = src_.size();
      text = src_.substr(pos_, end - pos_);
    } else {
      text = src_.substr(pos_ + 1, end - pos_ - 1);
      end += closer.size();
    }
    while (pos_ < end && pos_ < src_.size()) advance();  // keep line count
    emit(TokKind::kString, std::move(text), start_line);
  }

  void identifier() {
    int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && ident_char(cur())) {
      text.push_back(cur());
      advance();
    }
    if (raw_string_prefix(text) && pos_ < src_.size() && cur() == '"') {
      raw_string();
      return;
    }
    emit(TokKind::kIdent, std::move(text), start_line);
  }

  void number() {
    int start_line = line_;
    std::string text;
    // pp-number-ish: digits, letters, '.', digit separators, exponent signs.
    while (pos_ < src_.size()) {
      char c = cur();
      if (ident_char(c) || c == '.' || c == '\'') {
        text.push_back(c);
        advance();
      } else if ((c == '+' || c == '-') && !text.empty() &&
                 (text.back() == 'e' || text.back() == 'E' ||
                  text.back() == 'p' || text.back() == 'P')) {
        text.push_back(c);
        advance();
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, std::move(text), start_line);
  }

  const std::string& src_;
  FileScan* out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

FileScan scan_file(const std::string& path, const std::string& contents) {
  FileScan scan;
  scan.path = path;
  scan.norm_path = path;
  for (char& c : scan.norm_path) {
    if (c == '\\') c = '/';
  }
  std::size_t dot = path.rfind('.');
  if (dot != std::string::npos) {
    std::string ext = path.substr(dot);
    scan.is_header = ext == ".h" || ext == ".hh" || ext == ".hpp";
  }
  Lexer(contents, &scan).run();
  return scan;
}

}  // namespace simlint
