// Minimal C++ tokenizer for simlint. It is not a compiler front end: it
// strips comments, string/char literals and whitespace, keeps identifiers,
// numbers and punctuation with line numbers, and extracts the two pieces of
// file-level structure the rules need (preprocessor directives and
// allow-suppression comments; see docs/STATIC_ANALYSIS.md for the exact
// syntax). That is enough to enforce
// determinism invariants without a full parse, and keeps the tool
// dependency-free.
#pragma once

#include <string>
#include <vector>

namespace simlint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (pp-numbers, loosely)
  kString,   // string or char literal (text excludes quotes)
  kPunct,    // punctuation; "::" is fused into one token
  kInclude,  // the target of an #include, e.g. "<ctime>" or "\"net/tls.h\""
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// One allow-suppression comment: a rule list plus a mandatory reason after
/// a double dash. A suppression covers findings on its own line and on the
/// line directly below it, so it works both trailing the offending code and
/// on a line of its own above it.
struct Suppression {
  std::vector<std::string> rules;
  bool has_reason = false;
  bool parse_ok = false;  // false: marker present but allow(...) malformed
  int line = 0;
};

struct FileScan {
  std::string path;       // as given on the command line (used in output)
  std::string norm_path;  // backslashes folded to '/' (used by path filters)
  bool is_header = false;
  bool has_pragma_once = false;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

/// Tokenizes `contents`; never fails (unterminated constructs are closed at
/// end of file so rules still see the prefix).
FileScan scan_file(const std::string& path, const std::string& contents);

}  // namespace simlint
