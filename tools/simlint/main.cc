// simlint — determinism & simulation-safety linter for the ptperf tree.
//
//   simlint [--json] [--list-rules] <file-or-dir>...
//
// Scans .h/.cc files (directories are walked recursively), applies every
// registered rule, and prints findings as `file:line: [rule] message` (or a
// JSON array with --json, for diffing and CI annotation). Exit status: 0
// clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

/// Expands files/directories into a sorted, de-duplicated file list so
/// output order never depends on filesystem iteration order.
std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       bool* io_error) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "simlint: cannot read '" << p << "'\n";
      *io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void print_text(const std::vector<simlint::Finding>& findings) {
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "simlint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s")
              << " (see docs/STATIC_ANALYSIS.md; suppress a deliberate case "
                 "with '// simlint: allow(<rule>) -- <reason>')\n";
  }
}

void print_json(const std::vector<simlint::Finding>& findings) {
  std::cout << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    std::cout << (i ? ",\n    " : "\n    ") << "{\"file\": \""
              << json_escape(f.file) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << json_escape(f.rule)
              << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "" : "\n  ") << "],\n  \"count\": "
            << findings.size() << "\n}\n";
}

void print_rules() {
  for (const auto& r : simlint::rules()) {
    std::cout << r.name << "\n    " << r.summary << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: simlint [--json] [--list-rules] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "simlint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: simlint [--json] [--list-rules] <file-or-dir>...\n";
    return 2;
  }

  bool io_error = false;
  std::vector<simlint::Finding> findings;
  for (const std::string& file : collect_files(paths, &io_error)) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "simlint: cannot open '" << file << "'\n";
      io_error = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    simlint::FileScan scan = simlint::scan_file(file, buf.str());
    std::vector<simlint::Finding> file_findings = simlint::lint_file(scan);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  std::sort(findings.begin(), findings.end());

  if (json) {
    print_json(findings);
  } else {
    print_text(findings);
  }
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}
