// simlint — determinism & architecture linter for the ptperf tree.
//
//   simlint [--json | --sarif <file>] [--layers <layers.conf>]
//           [--baseline <baseline.json>] [--write-baseline <baseline.json>]
//           [--list-rules] <file-or-dir>...
//
// v2 builds a whole-project model (file index, include graph, per-file
// symbol summaries) before running any rule, so cross-file analyses —
// include cycles, layer conformance against a declared DAG, taint from a
// header-declared container to the .cc that iterates it — see the project,
// not one file at a time.
//
// Output: `file:line: [rule] message` text by default, a JSON object with
// --json, and additionally a SARIF 2.1.0 document written to the --sarif
// path (use `-` for stdout). With --baseline, findings recorded in the
// baseline are subtracted and only *new* findings fail the run; retired
// baseline entries are reported so the debt file can be pruned.
// --write-baseline regenerates the baseline from the current findings.
//
// Exit status: 0 clean (or all findings baselined), 1 findings (new
// findings under --baseline), 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "graph.h"
#include "json.h"
#include "lexer.h"
#include "project.h"
#include "rules.h"
#include "sarif.h"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

/// Expands files/directories into a sorted, de-duplicated file list so
/// output order never depends on filesystem iteration order. Directory
/// arguments double as include-resolution roots.
std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       std::vector<std::string>* roots,
                                       bool* io_error) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      roots->push_back(simlint::normalize_path(fs::path(p).generic_string()));
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "simlint: cannot read '" << p << "'\n";
      *io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string json_escape(const std::string& s) {
  return simlint::json::escape(s);
}

void print_text(const std::vector<simlint::Finding>& findings) {
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "simlint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s")
              << " (see docs/STATIC_ANALYSIS.md; suppress a deliberate case "
                 "with '// simlint: allow(<rule>) -- <reason>')\n";
  }
}

void print_json(const std::vector<simlint::Finding>& findings) {
  std::cout << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    std::cout << (i ? ",\n    " : "\n    ") << "{\"file\": \""
              << json_escape(f.file) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << json_escape(f.rule)
              << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "" : "\n  ") << "],\n  \"count\": "
            << findings.size() << "\n}\n";
}

void print_rules() {
  for (const auto& r : simlint::rules()) {
    std::cout << r.name << "\n    " << r.summary << "\n";
  }
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

constexpr const char* kUsage =
    "usage: simlint [--json] [--sarif <file>] [--layers <layers.conf>]\n"
    "               [--baseline <baseline.json>]\n"
    "               [--write-baseline <baseline.json>] [--list-rules]\n"
    "               <file-or-dir>...\n";

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string sarif_path;
  std::string layers_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](std::string* dst) {
      if (i + 1 >= argc) {
        std::cerr << "simlint: '" << arg << "' needs a value\n";
        return false;
      }
      *dst = argv[++i];
      return true;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      if (!value(&sarif_path)) return 2;
    } else if (arg == "--layers") {
      if (!value(&layers_path)) return 2;
    } else if (arg == "--baseline") {
      if (!value(&baseline_path)) return 2;
    } else if (arg == "--write-baseline") {
      if (!value(&write_baseline_path)) return 2;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "simlint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  simlint::LayerConfig layers;
  if (!layers_path.empty()) {
    std::string text;
    if (!read_file(layers_path, &text)) {
      std::cerr << "simlint: cannot open layers config '" << layers_path
                << "'\n";
      return 2;
    }
    std::string error;
    if (!simlint::LayerConfig::parse(text, &layers, &error)) {
      std::cerr << "simlint: " << error << "\n";
      return 2;
    }
  }

  simlint::Baseline baseline;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::cerr << "simlint: cannot open baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    std::string error;
    if (!simlint::Baseline::load(text, &baseline, &error)) {
      std::cerr << "simlint: " << baseline_path << ": " << error << "\n";
      return 2;
    }
    have_baseline = true;
  }

  bool io_error = false;
  std::vector<std::string> roots;
  std::vector<simlint::FileScan> scans;
  for (const std::string& file : collect_files(paths, &roots, &io_error)) {
    std::string contents;
    if (!read_file(file, &contents)) {
      std::cerr << "simlint: cannot open '" << file << "'\n";
      io_error = true;
      continue;
    }
    scans.push_back(simlint::scan_file(file, contents));
  }

  simlint::Project project =
      simlint::Project::build(std::move(scans), std::move(roots));
  simlint::ProjectContext ctx;
  ctx.project = &project;
  ctx.layers = layers.empty() ? nullptr : &layers;
  std::vector<simlint::Finding> findings = simlint::lint_project(ctx);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "simlint: cannot write baseline '" << write_baseline_path
                << "'\n";
      return 2;
    }
    out << simlint::Baseline::serialize(findings);
    std::cerr << "simlint: wrote baseline (" << findings.size()
              << " findings) to " << write_baseline_path << "\n";
  }

  if (!sarif_path.empty()) {
    std::string doc = simlint::to_sarif(findings);
    if (sarif_path == "-") {
      std::cout << doc;
    } else {
      std::ofstream out(sarif_path, std::ios::binary);
      if (!out) {
        std::cerr << "simlint: cannot write SARIF to '" << sarif_path
                  << "'\n";
        return 2;
      }
      out << doc;
    }
  }

  // Baseline mode: only findings NOT absorbed by the baseline gate the run.
  std::vector<simlint::Finding> gating = findings;
  if (have_baseline) {
    simlint::BaselineMatch m = baseline.match(findings);
    gating = m.fresh;
    if (!json) {
      if (m.matched > 0) {
        std::cout << "simlint: " << m.matched << " baselined finding"
                  << (m.matched == 1 ? "" : "s") << " suppressed ("
                  << baseline_path << ")\n";
      }
      for (const std::string& r : m.retired) {
        std::cout << "simlint: baseline entry no longer matches (prune it): "
                  << r << "\n";
      }
    }
  }

  if (json) {
    print_json(gating);
  } else {
    print_text(gating);
  }
  if (io_error) return 2;
  return gating.empty() ? 0 : 1;
}
