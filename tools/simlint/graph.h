// Include-graph analyses for simlint v2: the declared layer DAG
// (tools/simlint/layers.conf) and cycle detection over the project include
// graph. Both operate on the Project model; neither touches the filesystem.
//
// layers.conf grammar (one declaration per line, '#' comments):
//
//   <module>:                     # bottom layer, no project dependencies
//   <module>: <dep> <dep> ...     # may include itself and the listed deps
//   <module>: *                   # presentation layer, may include anything
//
// Modules are the names module_of() produces ("src/net", "bench", ...).
// The declared graph must itself be a DAG — validate() rejects a config
// whose allow-lists contain a dependency cycle, so the conformance check
// can never be satisfied by a circular declaration.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "project.h"

namespace simlint {

class LayerConfig {
 public:
  /// Parses the config text. Returns false and fills `*error` on a syntax
  /// error, a duplicate module, an allow-list naming an undeclared module,
  /// or a cyclic declaration.
  static bool parse(const std::string& text, LayerConfig* out,
                    std::string* error);

  bool empty() const { return modules_.empty(); }

  /// True if `module` is declared.
  bool knows(const std::string& module) const;

  /// True if a file in `from` may include a file in `to`. Self-edges are
  /// always allowed; "*" allows everything.
  bool allowed(const std::string& from, const std::string& to) const;

  const std::vector<std::pair<std::string, std::vector<std::string>>>&
  modules() const {
    return modules_;
  }

 private:
  // module -> allowed dependency modules ("*" alone means wildcard).
  std::vector<std::pair<std::string, std::vector<std::string>>> modules_;
};

/// Elementary cycles found in the project include graph, each reported
/// once: file ids in walk order, rotated so the lexicographically smallest
/// path comes first, sorted by that first path. An empty result is the
/// acyclicity certificate the architecture rules rely on.
std::vector<std::vector<int>> find_include_cycles(const Project& project);

}  // namespace simlint
