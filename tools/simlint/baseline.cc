#include "baseline.h"

#include <algorithm>
#include <map>

#include "json.h"
#include "project.h"

namespace simlint {

bool Baseline::load(const std::string& json_text, Baseline* out,
                    std::string* error) {
  out->entries_.clear();
  json::Value doc;
  if (!json::parse(json_text, &doc, error)) return false;
  auto fail = [&](const std::string& why) {
    if (error) *error = "baseline: " + why;
    return false;
  };
  if (!doc.is_object()) return fail("document must be an object");
  const json::Value* version = doc.get("version", json::Value::Kind::kNumber);
  if (!version || version->number != 1) {
    return fail("missing or unsupported \"version\" (expected 1)");
  }
  const json::Value* findings =
      doc.get("findings", json::Value::Kind::kArray);
  if (!findings) return fail("missing \"findings\" array");
  for (const json::Value& f : findings->array) {
    const json::Value* file = f.get("file", json::Value::Kind::kString);
    const json::Value* rule = f.get("rule", json::Value::Kind::kString);
    const json::Value* message =
        f.get("message", json::Value::Kind::kString);
    const json::Value* count = f.get("count", json::Value::Kind::kNumber);
    if (!file || !rule || !message) {
      return fail("each finding needs string \"file\", \"rule\", "
                  "\"message\"");
    }
    Entry e{file->str, rule->str, message->str,
            count ? static_cast<int>(count->number) : 1};
    if (e.count < 1) return fail("\"count\" must be >= 1");
    out->entries_.push_back(std::move(e));
  }
  return true;
}

std::string Baseline::serialize(const std::vector<Finding>& findings) {
  // signature -> count, sorted by (file, rule, message).
  std::map<std::string, std::map<std::pair<std::string, std::string>, int>>
      counts;
  for (const Finding& f : findings) {
    ++counts[baseline_key_path(f.file)][{f.rule, f.message}];
  }
  std::string out = "{\n  \"version\": 1,\n  \"findings\": [";
  bool first = true;
  for (const auto& [file, by_rule] : counts) {
    for (const auto& [rule_msg, count] : by_rule) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"file\": \"" + json::escape(file) + "\", \"rule\": \"" +
             json::escape(rule_msg.first) + "\", \"message\": \"" +
             json::escape(rule_msg.second) +
             "\", \"count\": " + std::to_string(count) + "}";
    }
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"count\": " + std::to_string(findings.size()) + "\n}\n";
  return out;
}

BaselineMatch Baseline::match(const std::vector<Finding>& findings) const {
  BaselineMatch result;
  // Remaining budget per signature; findings beyond the recorded count are
  // new (a regression that *adds* a second instance of old debt fails).
  std::map<std::string, int> budget;
  auto key = [](const std::string& file, const std::string& rule,
                const std::string& message) {
    return file + "\x1f" + rule + "\x1f" + message;
  };
  for (const Entry& e : entries_) {
    budget[key(e.file, e.rule, e.message)] += e.count;
  }
  std::map<std::string, int> used;
  for (const Finding& f : findings) {
    std::string k = key(baseline_key_path(f.file), f.rule, f.message);
    auto it = budget.find(k);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++used[k];
      ++result.matched;
    } else {
      result.fresh.push_back(f);
    }
  }
  for (const Entry& e : entries_) {
    std::string k = key(e.file, e.rule, e.message);
    if (used.find(k) == used.end()) {
      result.retired.push_back(e.file + ": [" + e.rule + "] " + e.message);
    }
  }
  std::sort(result.retired.begin(), result.retired.end());
  result.retired.erase(
      std::unique(result.retired.begin(), result.retired.end()),
      result.retired.end());
  return result;
}

}  // namespace simlint
