#include "project.h"

#include <algorithm>
#include <map>
#include <string_view>

namespace simlint {
namespace {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segs;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) segs.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) segs.push_back(std::move(cur));
  return segs;
}

bool is_top_module_seg(const std::string& seg) {
  return seg == "bench" || seg == "tools" || seg == "tests";
}

std::string dirname_of(const std::string& norm_path) {
  std::size_t slash = norm_path.rfind('/');
  return slash == std::string::npos ? std::string()
                                    : norm_path.substr(0, slash);
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_unordered_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

void add_unique(std::vector<std::string>& v, const std::string& s) {
  if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
}

/// Keywords that can open the *next* declarator in a comma-separated list
/// (`double se, int n`) — never the declared name itself.
bool is_type_keyword(const std::string& s) {
  return s == "int" || s == "long" || s == "short" || s == "char" ||
         s == "bool" || s == "float" || s == "double" || s == "unsigned" ||
         s == "signed" || s == "const" || s == "auto" || s == "void" ||
         s == "std" || s == "size_t";
}

/// Index just past a balanced template argument list opening at `open`
/// (which must point at '<'), or open+1 if it never closes.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (is_punct(toks[j], "<")) ++depth;
    else if (is_punct(toks[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) {
      break;  // malformed / not actually a template argument list
    }
  }
  return open + 1;
}

}  // namespace

std::string normalize_path(const std::string& path) {
  bool absolute = !path.empty() && path[0] == '/';
  std::vector<std::string> out;
  for (std::string& seg : split_path(path)) {
    if (seg == ".") continue;
    if (seg == "..") {
      if (!out.empty() && out.back() != "..") {
        out.pop_back();
      } else if (!absolute) {
        out.push_back(std::move(seg));
      }
      continue;
    }
    out.push_back(std::move(seg));
  }
  std::string joined = absolute ? "/" : "";
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i) joined += '/';
    joined += out[i];
  }
  return joined;
}

std::string module_of(const std::string& norm_path) {
  std::vector<std::string> segs = split_path(norm_path);
  if (segs.empty()) return "";
  // Rightmost structural segment wins, so fixture trees embedding an
  // src/-shaped layout map onto the same modules as the real tree.
  for (std::size_t i = segs.size(); i-- > 0;) {
    if (segs[i] == "src") {
      // "src/<dir>/..." -> "src/<dir>"; a file directly in src/ is "src".
      if (i + 2 < segs.size()) return "src/" + segs[i + 1];
      return "src";
    }
    if (is_top_module_seg(segs[i]) && i + 1 < segs.size()) return segs[i];
  }
  return "";
}

std::string baseline_key_path(const std::string& norm_path) {
  std::vector<std::string> segs = split_path(norm_path);
  for (std::size_t i = segs.size(); i-- > 0;) {
    if ((segs[i] == "src" || is_top_module_seg(segs[i])) &&
        i + 1 < segs.size()) {
      std::string out;
      for (std::size_t j = i; j < segs.size(); ++j) {
        if (j > i) out += '/';
        out += segs[j];
      }
      return out;
    }
  }
  return norm_path;
}

FileSummary summarize_file(const FileScan& scan) {
  FileSummary s;
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;

    // Output emission: stats::Table users, stream/FILE writers.
    if (t.text == "Table" || t.text == "ofstream" || t.text == "fopen" ||
        t.text == "fwrite" || t.text == "popen") {
      s.emits_output = true;
    }

    // double/float declarations: `double x`, `double x, y`, `double& x`.
    // A following '(' means a function declarator — skip those so method
    // names don't pollute the operand set.
    if (t.text == "double" || t.text == "float") {
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      while (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent &&
             !is_type_keyword(toks[j].text) && !is_punct(toks[j + 1], "(")) {
        add_unique(s.float_idents, toks[j].text);
        if (!is_punct(toks[j + 1], ",")) break;
        j += 2;
      }
      continue;
    }

    // unordered_* declarations: capture the declared name after the
    // template argument list, e.g. `std::unordered_map<K, V> members_;`.
    if (is_unordered_name(t.text) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "<")) {
      std::size_t j = skip_template_args(toks, i + 1);
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      if (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent &&
          !is_punct(toks[j + 1], "(")) {
        add_unique(s.unordered_idents, toks[j].text);
      }
      continue;
    }

    // enum-class definitions with their enumerator lists.
    if (t.text == "enum") {
      std::size_t j = i + 1;
      if (j < toks.size() &&
          (is_ident(toks[j], "class") || is_ident(toks[j], "struct"))) {
        ++j;
      }
      if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
      std::string name = toks[j].text;
      ++j;
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        ++j;  // underlying-type clause
      }
      if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
      std::vector<std::string> members;
      ++j;
      while (j < toks.size() && !is_punct(toks[j], "}")) {
        if (toks[j].kind == TokKind::kIdent) {
          members.push_back(toks[j].text);
          // Skip any initializer up to the next ',' or the closing '}'.
          int depth = 0;
          while (j < toks.size()) {
            if (is_punct(toks[j], "(") || is_punct(toks[j], "{")) ++depth;
            else if (is_punct(toks[j], ")")) --depth;
            else if (is_punct(toks[j], "}")) {
              if (depth == 0) break;
              --depth;
            } else if (is_punct(toks[j], ",") && depth == 0) {
              break;
            }
            ++j;
          }
        }
        if (j < toks.size() && is_punct(toks[j], ",")) ++j;
      }
      if (!members.empty()) s.enums.emplace_back(std::move(name),
                                                 std::move(members));
    }
  }
  return s;
}

Project Project::build(std::vector<FileScan> scans,
                       std::vector<std::string> roots) {
  Project p;
  for (std::string& r : roots) {
    for (char& c : r) {
      if (c == '\\') c = '/';
    }
    p.roots_.push_back(normalize_path(r));
  }

  std::sort(scans.begin(), scans.end(),
            [](const FileScan& a, const FileScan& b) {
              return a.norm_path < b.norm_path;
            });
  std::map<std::string, int> index;
  for (FileScan& scan : scans) {
    ProjectFile f;
    f.scan = std::move(scan);
    f.scan.norm_path = normalize_path(f.scan.norm_path);
    f.module = module_of(f.scan.norm_path);
    f.summary = summarize_file(f.scan);
    index.emplace(f.scan.norm_path, static_cast<int>(p.files_.size()));
    p.files_.push_back(std::move(f));
  }

  for (ProjectFile& f : p.files_) {
    for (const Token& t : f.scan.tokens) {
      if (t.kind != TokKind::kInclude || t.text.size() < 2 ||
          t.text.front() != '"') {
        continue;  // angle includes are system headers
      }
      std::string target = t.text.substr(1, t.text.size() - 2);
      std::vector<std::string> candidates;
      std::string dir = dirname_of(f.scan.norm_path);
      candidates.push_back(
          normalize_path(dir.empty() ? target : dir + "/" + target));
      for (const std::string& root : p.roots_) {
        candidates.push_back(normalize_path(root + "/" + target));
      }
      for (const std::string& c : candidates) {
        auto it = index.find(c);
        if (it != index.end()) {
          f.includes.emplace_back(it->second, t.line);
          break;
        }
      }
    }
    std::sort(f.includes.begin(), f.includes.end());
    f.includes.erase(std::unique(f.includes.begin(), f.includes.end()),
                     f.includes.end());
  }

  for (const ProjectFile& f : p.files_) {
    for (const auto& [name, members] : f.summary.enums) {
      bool known = std::any_of(
          p.enums_.begin(), p.enums_.end(),
          [&](const auto& e) { return e.first == name; });
      if (!known) p.enums_.emplace_back(name, members);
    }
  }
  return p;
}

int Project::index_of(const std::string& norm_path) const {
  std::string key = normalize_path(norm_path);
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].scan.norm_path == key) return static_cast<int>(i);
  }
  return -1;
}

FileSummary Project::closure_summary(int id) const {
  FileSummary out;
  if (id < 0 || id >= static_cast<int>(files_.size())) return out;
  std::vector<char> seen(files_.size(), 0);
  std::vector<int> stack = {id};
  seen[static_cast<std::size_t>(id)] = 1;
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    const FileSummary& s = files_[static_cast<std::size_t>(cur)].summary;
    for (const std::string& n : s.float_idents) add_unique(out.float_idents, n);
    for (const std::string& n : s.unordered_idents) {
      add_unique(out.unordered_idents, n);
    }
    out.emits_output = out.emits_output || s.emits_output;
    for (const auto& [to, line] : files_[static_cast<std::size_t>(cur)].includes) {
      if (!seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = 1;
        stack.push_back(to);
      }
    }
  }
  std::sort(out.float_idents.begin(), out.float_idents.end());
  std::sort(out.unordered_idents.begin(), out.unordered_idents.end());
  return out;
}

const std::vector<std::string>* Project::enum_members(
    const std::string& name) const {
  for (const auto& [n, members] : enums_) {
    if (n == name) return &members;
  }
  return nullptr;
}

}  // namespace simlint
