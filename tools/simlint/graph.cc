#include "graph.h"

#include <algorithm>
#include <set>

namespace simlint {
namespace {

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

}  // namespace

bool LayerConfig::parse(const std::string& text, LayerConfig* out,
                        std::string* error) {
  out->modules_.clear();
  auto fail = [&](int line, const std::string& why) {
    if (error) *error = "layers.conf:" + std::to_string(line) + ": " + why;
    return false;
  };

  int line_no = 0;
  std::string line;
  for (std::size_t pos = 0; pos <= text.size(); ++pos) {
    if (pos < text.size() && text[pos] != '\n') {
      line.push_back(text[pos]);
      continue;
    }
    ++line_no;
    std::string body = line;
    line.clear();
    std::size_t hash = body.find('#');
    if (hash != std::string::npos) body.resize(hash);
    std::vector<std::string> words = split_ws(body);
    if (words.empty()) continue;
    std::string head = words[0];
    if (head.empty() || head.back() != ':') {
      return fail(line_no, "expected '<module>:' declaration");
    }
    head.pop_back();
    if (head.empty()) return fail(line_no, "empty module name");
    if (out->knows(head)) {
      return fail(line_no, "module '" + head + "' declared twice");
    }
    out->modules_.emplace_back(
        head, std::vector<std::string>(words.begin() + 1, words.end()));
  }

  // Allow-lists may only name declared modules (or the wildcard), and the
  // declared graph must be acyclic.
  for (const auto& [mod, deps] : out->modules_) {
    for (const std::string& d : deps) {
      if (d == "*") {
        if (deps.size() != 1) {
          return fail(0, "module '" + mod + "': '*' must stand alone");
        }
        continue;
      }
      if (d == mod) {
        return fail(0, "module '" + mod + "' lists itself (self-edges are "
                       "implicit)");
      }
      if (!out->knows(d)) {
        return fail(0, "module '" + mod + "' depends on undeclared '" + d +
                       "'");
      }
    }
  }

  // DFS over the declared graph ("*" edges excluded: wildcard layers sit on
  // top and cannot complete a declared cycle through themselves).
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(out->modules_.size(), kWhite);
  auto index_of = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < out->modules_.size(); ++i) {
      if (out->modules_[i].first == name) return static_cast<int>(i);
    }
    return -1;
  };
  std::string cycle_at;
  auto dfs = [&](auto&& self, int u) -> bool {
    color[static_cast<std::size_t>(u)] = kGray;
    for (const std::string& d :
         out->modules_[static_cast<std::size_t>(u)].second) {
      if (d == "*") continue;
      int v = index_of(d);
      if (color[static_cast<std::size_t>(v)] == kGray) {
        cycle_at = out->modules_[static_cast<std::size_t>(v)].first;
        return false;
      }
      if (color[static_cast<std::size_t>(v)] == kWhite && !self(self, v)) {
        return false;
      }
    }
    color[static_cast<std::size_t>(u)] = kBlack;
    return true;
  };
  for (std::size_t i = 0; i < out->modules_.size(); ++i) {
    if (color[i] == kWhite && !dfs(dfs, static_cast<int>(i))) {
      return fail(0, "declared layer graph has a cycle through '" +
                     cycle_at + "'");
    }
  }
  return true;
}

bool LayerConfig::knows(const std::string& module) const {
  for (const auto& [mod, deps] : modules_) {
    if (mod == module) return true;
  }
  return false;
}

bool LayerConfig::allowed(const std::string& from,
                          const std::string& to) const {
  if (from == to) return true;
  for (const auto& [mod, deps] : modules_) {
    if (mod != from) continue;
    for (const std::string& d : deps) {
      if (d == "*" || d == to) return true;
    }
    return false;
  }
  return false;
}

std::vector<std::vector<int>> find_include_cycles(const Project& project) {
  const auto& files = project.files();
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(files.size(), kWhite);
  std::vector<int> stack;
  std::vector<std::vector<int>> cycles;
  std::set<std::string> seen;

  auto record = [&](int back_to) {
    auto it = std::find(stack.begin(), stack.end(), back_to);
    std::vector<int> cycle(it, stack.end());
    // Canonical rotation: smallest path first, so each cycle is reported
    // once no matter where the DFS entered it.
    std::size_t best = 0;
    for (std::size_t i = 1; i < cycle.size(); ++i) {
      if (files[static_cast<std::size_t>(cycle[i])].scan.norm_path <
          files[static_cast<std::size_t>(cycle[best])].scan.norm_path) {
        best = i;
      }
    }
    std::rotate(cycle.begin(), cycle.begin() + static_cast<long>(best),
                cycle.end());
    std::string key;
    for (int id : cycle) {
      key += files[static_cast<std::size_t>(id)].scan.norm_path;
      key += '\n';
    }
    if (seen.insert(key).second) cycles.push_back(std::move(cycle));
  };

  auto dfs = [&](auto&& self, int u) -> void {
    color[static_cast<std::size_t>(u)] = kGray;
    stack.push_back(u);
    for (const auto& [v, line] : files[static_cast<std::size_t>(u)].includes) {
      if (color[static_cast<std::size_t>(v)] == kGray) {
        record(v);
      } else if (color[static_cast<std::size_t>(v)] == kWhite) {
        self(self, v);
      }
    }
    stack.pop_back();
    color[static_cast<std::size_t>(u)] = kBlack;
  };
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (color[i] == kWhite) dfs(dfs, static_cast<int>(i));
  }

  std::sort(cycles.begin(), cycles.end(),
            [&](const std::vector<int>& a, const std::vector<int>& b) {
              return files[static_cast<std::size_t>(a[0])].scan.norm_path <
                     files[static_cast<std::size_t>(b[0])].scan.norm_path;
            });
  return cycles;
}

}  // namespace simlint
