// SARIF 2.1.0 output for simlint findings, so CI can upload results to code
// scanning (github/codeql-action/upload-sarif) and editors can ingest them.
// One run, one driver ("simlint"), every registered rule listed in
// tool.driver.rules with results referencing them by ruleId + ruleIndex.
// Artifact URIs use baseline_key_path() so the document is invocation-stable.
#pragma once

#include <string>
#include <vector>

#include "rules.h"

namespace simlint {

/// Serializes `findings` as a SARIF 2.1.0 document (pretty-printed JSON).
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace simlint
