// Baselined findings for diff-aware CI. A baseline records pre-existing
// findings as (file, rule, message) signatures with a count; `--baseline`
// mode subtracts them so only *new* findings fail the run, while the
// checked-in debt can only be burned down (a signature that stops matching
// is reported as retired and should be dropped from the file).
//
// Signatures use baseline_key_path() for the file and deliberately exclude
// line numbers, so unrelated edits above a finding never churn the
// baseline; identical findings in one file are absorbed by the count.
#pragma once

#include <string>
#include <vector>

#include "rules.h"

namespace simlint {

struct BaselineMatch {
  std::vector<Finding> fresh;     // findings not covered by the baseline
  int matched = 0;                // findings absorbed by the baseline
  std::vector<std::string> retired;  // baseline signatures no longer seen
};

class Baseline {
 public:
  /// Parses baseline JSON ({"version": 1, "findings": [...]}) . Returns
  /// false and fills `*error` on malformed input.
  static bool load(const std::string& json_text, Baseline* out,
                   std::string* error);

  /// Serializes `findings` as a baseline document (signatures aggregated
  /// into counts, sorted) — the `--write-baseline` output.
  static std::string serialize(const std::vector<Finding>& findings);

  /// Splits `findings` into new-vs-baselined and reports retired entries.
  BaselineMatch match(const std::vector<Finding>& findings) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string file;  // baseline_key_path form
    std::string rule;
    std::string message;
    int count = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace simlint
