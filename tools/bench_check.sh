#!/usr/bin/env bash
# Micro-benchmark gate for the zero-copy cell pipeline: runs bench_micro,
# condenses the google-benchmark JSON to per-benchmark medians, and diffs
# them against the checked-in bench/baseline.json. A benchmark that got
# slower than baseline by more than the tolerance band fails the run; a
# benchmark absent from the baseline is recorded, not gated (new
# benchmarks enter the baseline deliberately, via --write-baseline).
#
#   tools/bench_check.sh [--record] [--out <file>] [--repetitions N]
#                        [--require-speedup PCT] [--write-baseline]
#
# --record appends the condensed run to bench/BENCH_micro.json (the
# checked-in perf trajectory; see docs/PERFORMANCE.md) instead of writing
# the default ./BENCH_micro.json CI artifact. The checked-in file is a
# per-PR series ("ptperf-bench-series-v1"): one entry per recorded run,
# labelled by commit, oldest first — a legacy single-run file is wrapped
# as the series' first entry on the next --record. --require-speedup additionally
# asserts that every zero-copy/legacy trajectory pair improved on the
# baseline by at least PCT percent. --write-baseline regenerates
# bench/baseline.json from this run — review the diff before committing.
#
# Environment: BENCH_BIN (default ./build/bench/bench_micro),
# BENCH_TOLERANCE (regression band as a fraction, default 0.5 — wide on
# purpose: shared CI runners jitter, and the gate exists to catch the
# 2x-copy-crept-back class of regression, not 5% noise).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

out="BENCH_micro.json"
series=0
repetitions=3
require_speedup=""
write_baseline=0
while [ $# -gt 0 ]; do
  case "$1" in
    --record) out="bench/BENCH_micro.json"; series=1; shift ;;
    --out) out="$2"; shift 2 ;;
    --repetitions) repetitions="$2"; shift 2 ;;
    --require-speedup) require_speedup="$2"; shift 2 ;;
    --write-baseline) write_baseline=1; shift ;;
    *)
      echo "usage: tools/bench_check.sh [--record] [--out <file>]" \
           "[--repetitions N] [--require-speedup PCT] [--write-baseline]" >&2
      exit 2
      ;;
  esac
done

bin="${BENCH_BIN:-./build/bench/bench_micro}"
if [ ! -x "$bin" ]; then
  echo "bench_check: $bin not built (cmake --build build --target bench_micro)" >&2
  exit 2
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
"$bin" --benchmark_format=json --benchmark_repetitions="$repetitions" \
  --benchmark_out="$raw" --benchmark_out_format=json >/dev/null

label="$(git rev-parse --short HEAD 2>/dev/null || echo unversioned)"

OUT="$out" RAW="$raw" TOL="${BENCH_TOLERANCE:-0.5}" \
REQUIRE="${require_speedup}" WRITE_BASELINE="$write_baseline" \
SERIES="$series" LABEL="$label" \
python3 - <<'PY'
import json, os, sys

raw = json.load(open(os.environ["RAW"]))
tol = float(os.environ["TOL"])
require = os.environ["REQUIRE"]
out_path = os.environ["OUT"]

# Median real_time per benchmark family (repetitions=1 emits no aggregates,
# so fall back to the single sample).
run = {}
for b in raw["benchmarks"]:
    name, kind = b["name"], b.get("aggregate_name", "")
    if kind == "median":
        base = name[: -len("_median")]
    elif kind == "" and b.get("run_type", "iteration") == "iteration":
        base = name
        if base in run:
            continue  # keep the first sample only when no aggregates exist
    else:
        continue
    entry = {"ns": round(b["real_time"], 1)}
    if "bytes_per_second" in b:
        entry["bytes_per_second"] = round(b["bytes_per_second"])
    run[base] = entry
# Aggregates win over first-sample fallbacks.
for b in raw["benchmarks"]:
    if b.get("aggregate_name") == "median":
        base = b["name"][: -len("_median")]
        entry = {"ns": round(b["real_time"], 1)}
        if "bytes_per_second" in b:
            entry["bytes_per_second"] = round(b["bytes_per_second"])
        run[base] = entry

baseline_doc = json.load(open("bench/baseline.json"))
baseline = baseline_doc["benchmarks"]

# The perf trajectory this refactor claims: zero-copy entry points against
# the legacy (allocating) baseline benchmarks they displace on the hot
# path. Onion pairs with itself: the 3-hop layer crypt went in-place under
# the same benchmark name.
PAIRS = [
    ("cell-encode", "BM_CellPipeline", "BM_CellRoundTrip"),
    ("aead-498", "BM_AeadSealOpenInPlace/498", "BM_AeadSealOpen/498"),
    ("aead-8192", "BM_AeadSealOpenInPlace/8192", "BM_AeadSealOpen/8192"),
    ("onion-3hop", "BM_OnionLayer3Hop", "BM_OnionLayer3Hop"),
]

failures = []
regressed = []
for name, entry in sorted(run.items()):
    base = baseline.get(name)
    if base is None:
        print(f"  NEW       {name:42s} {entry['ns']:>12.1f} ns (recorded, not gated)")
        continue
    ratio = entry["ns"] / base["ns"]
    status = "ok"
    if ratio > 1.0 + tol:
        status = "REGRESSED"
        regressed.append((name, base["ns"], entry["ns"], ratio))
    print(f"  {status:9s} {name:42s} {base['ns']:>12.1f} -> {entry['ns']:>12.1f} ns ({(ratio - 1) * 100:+6.1f}%)")
for name in sorted(set(baseline) - set(run)):
    print(f"  GONE      {name:42s} (in baseline, not in this run — prune deliberately)")

trajectory = []
print("\nzero-copy trajectory vs pre-refactor baseline:")
for label, new_name, legacy_name in PAIRS:
    new, legacy = run.get(new_name), baseline.get(legacy_name)
    if new is None or legacy is None:
        print(f"  {label:12s} missing ({new_name} / {legacy_name})")
        failures.append(f"trajectory pair {label} missing")
        continue
    improvement = (1.0 - new["ns"] / legacy["ns"]) * 100.0
    trajectory.append({
        "pair": label,
        "zero_copy": new_name,
        "legacy_baseline": legacy_name,
        "baseline_ns": legacy["ns"],
        "ns": new["ns"],
        "improvement_pct": round(improvement, 1),
    })
    print(f"  {label:12s} {legacy['ns']:>10.1f} -> {new['ns']:>10.1f} ns  ({improvement:+.1f}%)")
    if require and improvement < float(require):
        failures.append(
            f"trajectory pair {label}: {improvement:.1f}% < required {require}%")

doc = {
    "schema": "ptperf-bench-run-v1",
    "source": "tools/bench_check.sh: bench_micro median real_time per repetition set",
    "benchmarks": run,
    "trajectory": trajectory,
}
if os.environ["SERIES"] == "1":
    # The checked-in trajectory is a per-PR series: one condensed entry per
    # recorded run, oldest first. A pre-series single-run file becomes the
    # series' first entry (labelled "pre-series" — its commit is unknown).
    entry = {
        "label": os.environ["LABEL"],
        "benchmarks": run,
        "trajectory": trajectory,
    }
    runs = []
    if os.path.exists(out_path):
        prior = json.load(open(out_path))
        if prior.get("schema") == "ptperf-bench-series-v1":
            runs = prior["runs"]
        elif "benchmarks" in prior:
            runs = [{
                "label": "pre-series",
                "benchmarks": prior["benchmarks"],
                "trajectory": prior.get("trajectory", []),
            }]
    if runs and runs[-1]["label"] == entry["label"]:
        runs[-1] = entry  # re-recording the same commit updates in place
    else:
        runs.append(entry)
    doc = {
        "schema": "ptperf-bench-series-v1",
        "source": "tools/bench_check.sh --record: one entry per recorded run, oldest first",
        "runs": runs,
    }
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
if os.environ["SERIES"] == "1":
    print(f"\nwrote {out_path} ({len(doc['runs'])} series entries; this run: {len(run)} benchmarks)")
else:
    print(f"\nwrote {out_path} ({len(run)} benchmarks)")

if os.environ["WRITE_BASELINE"] == "1":
    baseline_doc["benchmarks"] = run
    baseline_doc["source"] = "tools/bench_check.sh --write-baseline"
    with open("bench/baseline.json", "w") as f:
        json.dump(baseline_doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("rewrote bench/baseline.json — review the diff")

for name, base_ns, ns, ratio in regressed:
    failures.append(f"{name}: {base_ns:.1f} -> {ns:.1f} ns (x{ratio:.2f} > 1+{tol})")
if failures:
    print("\nbench_check FAILED:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("bench_check: ok")
PY
