# Empty dependencies file for ptperf_cli.
# This may be replaced when dependencies are built.
