file(REMOVE_RECURSE
  "CMakeFiles/ptperf_cli.dir/ptperf_cli.cc.o"
  "CMakeFiles/ptperf_cli.dir/ptperf_cli.cc.o.d"
  "ptperf"
  "ptperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
