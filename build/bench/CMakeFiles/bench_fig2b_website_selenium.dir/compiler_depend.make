# Empty compiler generated dependencies file for bench_fig2b_website_selenium.
# This may be replaced when dependencies are built.
