file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_website_selenium.dir/fig2b_website_selenium.cc.o"
  "CMakeFiles/bench_fig2b_website_selenium.dir/fig2b_website_selenium.cc.o.d"
  "bench_fig2b_website_selenium"
  "bench_fig2b_website_selenium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_website_selenium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
