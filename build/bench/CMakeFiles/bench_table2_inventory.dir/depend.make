# Empty dependencies file for bench_table2_inventory.
# This may be replaced when dependencies are built.
