file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_inventory.dir/table2_inventory.cc.o"
  "CMakeFiles/bench_table2_inventory.dir/table2_inventory.cc.o.d"
  "bench_table2_inventory"
  "bench_table2_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
