# Empty dependencies file for bench_medium_change.
# This may be replaced when dependencies are built.
