file(REMOVE_RECURSE
  "CMakeFiles/bench_medium_change.dir/medium_change.cc.o"
  "CMakeFiles/bench_medium_change.dir/medium_change.cc.o.d"
  "bench_medium_change"
  "bench_medium_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_medium_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
