file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fixed_guard.dir/fig4_fixed_guard.cc.o"
  "CMakeFiles/bench_fig4_fixed_guard.dir/fig4_fixed_guard.cc.o.d"
  "bench_fig4_fixed_guard"
  "bench_fig4_fixed_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fixed_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
