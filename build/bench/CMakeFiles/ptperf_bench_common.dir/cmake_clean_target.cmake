file(REMOVE_RECURSE
  "libptperf_bench_common.a"
)
