# Empty compiler generated dependencies file for ptperf_bench_common.
# This may be replaced when dependencies are built.
