file(REMOVE_RECURSE
  "CMakeFiles/ptperf_bench_common.dir/common.cc.o"
  "CMakeFiles/ptperf_bench_common.dir/common.cc.o.d"
  "libptperf_bench_common.a"
  "libptperf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
