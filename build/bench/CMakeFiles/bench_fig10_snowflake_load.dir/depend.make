# Empty dependencies file for bench_fig10_snowflake_load.
# This may be replaced when dependencies are built.
