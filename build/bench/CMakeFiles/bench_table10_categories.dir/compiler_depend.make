# Empty compiler generated dependencies file for bench_table10_categories.
# This may be replaced when dependencies are built.
