file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_categories.dir/table10_categories.cc.o"
  "CMakeFiles/bench_table10_categories.dir/table10_categories.cc.o.d"
  "bench_table10_categories"
  "bench_table10_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
