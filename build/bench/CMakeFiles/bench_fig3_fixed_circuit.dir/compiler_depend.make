# Empty compiler generated dependencies file for bench_fig3_fixed_circuit.
# This may be replaced when dependencies are built.
