file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fixed_circuit.dir/fig3_fixed_circuit.cc.o"
  "CMakeFiles/bench_fig3_fixed_circuit.dir/fig3_fixed_circuit.cc.o.d"
  "bench_fig3_fixed_circuit"
  "bench_fig3_fixed_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fixed_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
