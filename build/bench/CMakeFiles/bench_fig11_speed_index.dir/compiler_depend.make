# Empty compiler generated dependencies file for bench_fig11_speed_index.
# This may be replaced when dependencies are built.
