file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_speed_index.dir/fig11_speed_index.cc.o"
  "CMakeFiles/bench_fig11_speed_index.dir/fig11_speed_index.cc.o.d"
  "bench_fig11_speed_index"
  "bench_fig11_speed_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_speed_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
