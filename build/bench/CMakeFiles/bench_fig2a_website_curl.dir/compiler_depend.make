# Empty compiler generated dependencies file for bench_fig2a_website_curl.
# This may be replaced when dependencies are built.
