file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_website_curl.dir/fig2a_website_curl.cc.o"
  "CMakeFiles/bench_fig2a_website_curl.dir/fig2a_website_curl.cc.o.d"
  "bench_fig2a_website_curl"
  "bench_fig2a_website_curl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_website_curl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
