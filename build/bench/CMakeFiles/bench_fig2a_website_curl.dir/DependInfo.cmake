
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2a_website_curl.cc" "bench/CMakeFiles/bench_fig2a_website_curl.dir/fig2a_website_curl.cc.o" "gcc" "bench/CMakeFiles/bench_fig2a_website_curl.dir/fig2a_website_curl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ptperf_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ptperf/CMakeFiles/ptperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ptperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/ptperf_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/ptperf_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ptperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ptperf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptperf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ptperf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
