file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_ting.dir/appendix_ting.cc.o"
  "CMakeFiles/bench_appendix_ting.dir/appendix_ting.cc.o.d"
  "bench_appendix_ting"
  "bench_appendix_ting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_ting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
