# Empty compiler generated dependencies file for bench_appendix_ting.
# This may be replaced when dependencies are built.
