# Empty dependencies file for bench_fig7_location.
# This may be replaced when dependencies are built.
