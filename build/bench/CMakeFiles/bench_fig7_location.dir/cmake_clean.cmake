file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_location.dir/fig7_location.cc.o"
  "CMakeFiles/bench_fig7_location.dir/fig7_location.cc.o.d"
  "bench_fig7_location"
  "bench_fig7_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
