file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_snowflake_monitor.dir/fig12_snowflake_monitor.cc.o"
  "CMakeFiles/bench_fig12_snowflake_monitor.dir/fig12_snowflake_monitor.cc.o.d"
  "bench_fig12_snowflake_monitor"
  "bench_fig12_snowflake_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_snowflake_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
