# Empty compiler generated dependencies file for bench_fig12_snowflake_monitor.
# This may be replaced when dependencies are built.
