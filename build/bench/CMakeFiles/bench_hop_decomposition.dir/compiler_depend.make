# Empty compiler generated dependencies file for bench_hop_decomposition.
# This may be replaced when dependencies are built.
