file(REMOVE_RECURSE
  "CMakeFiles/bench_hop_decomposition.dir/hop_decomposition.cc.o"
  "CMakeFiles/bench_hop_decomposition.dir/hop_decomposition.cc.o.d"
  "bench_hop_decomposition"
  "bench_hop_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hop_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
