# Empty dependencies file for bench_fig6_ttfb.
# This may be replaced when dependencies are built.
