file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ttfb.dir/fig6_ttfb.cc.o"
  "CMakeFiles/bench_fig6_ttfb.dir/fig6_ttfb.cc.o.d"
  "bench_fig6_ttfb"
  "bench_fig6_ttfb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ttfb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
