file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_reliability.dir/fig8_reliability.cc.o"
  "CMakeFiles/bench_fig8_reliability.dir/fig8_reliability.cc.o.d"
  "bench_fig8_reliability"
  "bench_fig8_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
