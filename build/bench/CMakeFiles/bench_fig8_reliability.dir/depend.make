# Empty dependencies file for bench_fig8_reliability.
# This may be replaced when dependencies are built.
