# Empty dependencies file for bench_fig5_file_download.
# This may be replaced when dependencies are built.
