file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_file_download.dir/fig5_file_download.cc.o"
  "CMakeFiles/bench_fig5_file_download.dir/fig5_file_download.cc.o.d"
  "bench_fig5_file_download"
  "bench_fig5_file_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_file_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
