
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/behavior_test.cc" "tests/CMakeFiles/ptperf_tests.dir/behavior_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/behavior_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/ptperf_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/flow_control_test.cc" "tests/CMakeFiles/ptperf_tests.dir/flow_control_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/flow_control_test.cc.o.d"
  "/root/repo/tests/massbrowser_test.cc" "tests/CMakeFiles/ptperf_tests.dir/massbrowser_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/massbrowser_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/ptperf_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ptperf_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/pt_integration_test.cc" "tests/CMakeFiles/ptperf_tests.dir/pt_integration_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/pt_integration_test.cc.o.d"
  "/root/repo/tests/pt_protocol_test.cc" "tests/CMakeFiles/ptperf_tests.dir/pt_protocol_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/pt_protocol_test.cc.o.d"
  "/root/repo/tests/pt_unit_test.cc" "tests/CMakeFiles/ptperf_tests.dir/pt_unit_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/pt_unit_test.cc.o.d"
  "/root/repo/tests/relay_test.cc" "tests/CMakeFiles/ptperf_tests.dir/relay_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/relay_test.cc.o.d"
  "/root/repo/tests/scenario_test.cc" "tests/CMakeFiles/ptperf_tests.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/scenario_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/ptperf_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/ptperf_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/ptperf_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/ting_streaming_test.cc" "tests/CMakeFiles/ptperf_tests.dir/ting_streaming_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/ting_streaming_test.cc.o.d"
  "/root/repo/tests/tor_test.cc" "tests/CMakeFiles/ptperf_tests.dir/tor_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/tor_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/ptperf_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/ptperf_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/ptperf_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptperf/CMakeFiles/ptperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ptperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/ptperf_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/ptperf_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ptperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ptperf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptperf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ptperf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
