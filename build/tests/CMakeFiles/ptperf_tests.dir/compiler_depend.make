# Empty compiler generated dependencies file for ptperf_tests.
# This may be replaced when dependencies are built.
