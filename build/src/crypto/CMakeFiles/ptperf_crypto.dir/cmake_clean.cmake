file(REMOVE_RECURSE
  "CMakeFiles/ptperf_crypto.dir/aead.cc.o"
  "CMakeFiles/ptperf_crypto.dir/aead.cc.o.d"
  "CMakeFiles/ptperf_crypto.dir/chacha20.cc.o"
  "CMakeFiles/ptperf_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/ptperf_crypto.dir/hmac.cc.o"
  "CMakeFiles/ptperf_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/ptperf_crypto.dir/poly1305.cc.o"
  "CMakeFiles/ptperf_crypto.dir/poly1305.cc.o.d"
  "CMakeFiles/ptperf_crypto.dir/sha256.cc.o"
  "CMakeFiles/ptperf_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/ptperf_crypto.dir/x25519.cc.o"
  "CMakeFiles/ptperf_crypto.dir/x25519.cc.o.d"
  "libptperf_crypto.a"
  "libptperf_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
