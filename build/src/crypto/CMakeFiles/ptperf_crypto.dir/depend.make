# Empty dependencies file for ptperf_crypto.
# This may be replaced when dependencies are built.
