file(REMOVE_RECURSE
  "libptperf_crypto.a"
)
