file(REMOVE_RECURSE
  "libptperf_sim.a"
)
