file(REMOVE_RECURSE
  "CMakeFiles/ptperf_sim.dir/event_loop.cc.o"
  "CMakeFiles/ptperf_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/ptperf_sim.dir/rng.cc.o"
  "CMakeFiles/ptperf_sim.dir/rng.cc.o.d"
  "CMakeFiles/ptperf_sim.dir/time.cc.o"
  "CMakeFiles/ptperf_sim.dir/time.cc.o.d"
  "libptperf_sim.a"
  "libptperf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
