# Empty compiler generated dependencies file for ptperf_sim.
# This may be replaced when dependencies are built.
