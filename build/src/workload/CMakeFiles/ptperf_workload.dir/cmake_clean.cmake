file(REMOVE_RECURSE
  "CMakeFiles/ptperf_workload.dir/fetcher.cc.o"
  "CMakeFiles/ptperf_workload.dir/fetcher.cc.o.d"
  "CMakeFiles/ptperf_workload.dir/streaming.cc.o"
  "CMakeFiles/ptperf_workload.dir/streaming.cc.o.d"
  "CMakeFiles/ptperf_workload.dir/webserver.cc.o"
  "CMakeFiles/ptperf_workload.dir/webserver.cc.o.d"
  "CMakeFiles/ptperf_workload.dir/website.cc.o"
  "CMakeFiles/ptperf_workload.dir/website.cc.o.d"
  "libptperf_workload.a"
  "libptperf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
