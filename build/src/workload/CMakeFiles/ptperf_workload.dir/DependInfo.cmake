
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fetcher.cc" "src/workload/CMakeFiles/ptperf_workload.dir/fetcher.cc.o" "gcc" "src/workload/CMakeFiles/ptperf_workload.dir/fetcher.cc.o.d"
  "/root/repo/src/workload/streaming.cc" "src/workload/CMakeFiles/ptperf_workload.dir/streaming.cc.o" "gcc" "src/workload/CMakeFiles/ptperf_workload.dir/streaming.cc.o.d"
  "/root/repo/src/workload/webserver.cc" "src/workload/CMakeFiles/ptperf_workload.dir/webserver.cc.o" "gcc" "src/workload/CMakeFiles/ptperf_workload.dir/webserver.cc.o.d"
  "/root/repo/src/workload/website.cc" "src/workload/CMakeFiles/ptperf_workload.dir/website.cc.o" "gcc" "src/workload/CMakeFiles/ptperf_workload.dir/website.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ptperf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ptperf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptperf_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
