file(REMOVE_RECURSE
  "libptperf_workload.a"
)
