# Empty dependencies file for ptperf_workload.
# This may be replaced when dependencies are built.
