file(REMOVE_RECURSE
  "CMakeFiles/ptperf_util.dir/bytes.cc.o"
  "CMakeFiles/ptperf_util.dir/bytes.cc.o.d"
  "CMakeFiles/ptperf_util.dir/encoding.cc.o"
  "CMakeFiles/ptperf_util.dir/encoding.cc.o.d"
  "CMakeFiles/ptperf_util.dir/framer.cc.o"
  "CMakeFiles/ptperf_util.dir/framer.cc.o.d"
  "CMakeFiles/ptperf_util.dir/strings.cc.o"
  "CMakeFiles/ptperf_util.dir/strings.cc.o.d"
  "libptperf_util.a"
  "libptperf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
