# Empty dependencies file for ptperf_util.
# This may be replaced when dependencies are built.
