file(REMOVE_RECURSE
  "libptperf_util.a"
)
