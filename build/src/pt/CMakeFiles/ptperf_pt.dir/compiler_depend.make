# Empty compiler generated dependencies file for ptperf_pt.
# This may be replaced when dependencies are built.
