
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pt/camoufler.cc" "src/pt/CMakeFiles/ptperf_pt.dir/camoufler.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/camoufler.cc.o.d"
  "/root/repo/src/pt/crypto_channel.cc" "src/pt/CMakeFiles/ptperf_pt.dir/crypto_channel.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/crypto_channel.cc.o.d"
  "/root/repo/src/pt/dnstt.cc" "src/pt/CMakeFiles/ptperf_pt.dir/dnstt.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/dnstt.cc.o.d"
  "/root/repo/src/pt/fully_encrypted.cc" "src/pt/CMakeFiles/ptperf_pt.dir/fully_encrypted.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/fully_encrypted.cc.o.d"
  "/root/repo/src/pt/inventory.cc" "src/pt/CMakeFiles/ptperf_pt.dir/inventory.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/inventory.cc.o.d"
  "/root/repo/src/pt/marionette.cc" "src/pt/CMakeFiles/ptperf_pt.dir/marionette.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/marionette.cc.o.d"
  "/root/repo/src/pt/massbrowser.cc" "src/pt/CMakeFiles/ptperf_pt.dir/massbrowser.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/massbrowser.cc.o.d"
  "/root/repo/src/pt/meek.cc" "src/pt/CMakeFiles/ptperf_pt.dir/meek.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/meek.cc.o.d"
  "/root/repo/src/pt/segmenting_channel.cc" "src/pt/CMakeFiles/ptperf_pt.dir/segmenting_channel.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/segmenting_channel.cc.o.d"
  "/root/repo/src/pt/snowflake.cc" "src/pt/CMakeFiles/ptperf_pt.dir/snowflake.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/snowflake.cc.o.d"
  "/root/repo/src/pt/stegotorus.cc" "src/pt/CMakeFiles/ptperf_pt.dir/stegotorus.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/stegotorus.cc.o.d"
  "/root/repo/src/pt/tls_family.cc" "src/pt/CMakeFiles/ptperf_pt.dir/tls_family.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/tls_family.cc.o.d"
  "/root/repo/src/pt/transport.cc" "src/pt/CMakeFiles/ptperf_pt.dir/transport.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/transport.cc.o.d"
  "/root/repo/src/pt/upstream.cc" "src/pt/CMakeFiles/ptperf_pt.dir/upstream.cc.o" "gcc" "src/pt/CMakeFiles/ptperf_pt.dir/upstream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tor/CMakeFiles/ptperf_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ptperf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptperf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ptperf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
