file(REMOVE_RECURSE
  "CMakeFiles/ptperf_pt.dir/camoufler.cc.o"
  "CMakeFiles/ptperf_pt.dir/camoufler.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/crypto_channel.cc.o"
  "CMakeFiles/ptperf_pt.dir/crypto_channel.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/dnstt.cc.o"
  "CMakeFiles/ptperf_pt.dir/dnstt.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/fully_encrypted.cc.o"
  "CMakeFiles/ptperf_pt.dir/fully_encrypted.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/inventory.cc.o"
  "CMakeFiles/ptperf_pt.dir/inventory.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/marionette.cc.o"
  "CMakeFiles/ptperf_pt.dir/marionette.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/massbrowser.cc.o"
  "CMakeFiles/ptperf_pt.dir/massbrowser.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/meek.cc.o"
  "CMakeFiles/ptperf_pt.dir/meek.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/segmenting_channel.cc.o"
  "CMakeFiles/ptperf_pt.dir/segmenting_channel.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/snowflake.cc.o"
  "CMakeFiles/ptperf_pt.dir/snowflake.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/stegotorus.cc.o"
  "CMakeFiles/ptperf_pt.dir/stegotorus.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/tls_family.cc.o"
  "CMakeFiles/ptperf_pt.dir/tls_family.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/transport.cc.o"
  "CMakeFiles/ptperf_pt.dir/transport.cc.o.d"
  "CMakeFiles/ptperf_pt.dir/upstream.cc.o"
  "CMakeFiles/ptperf_pt.dir/upstream.cc.o.d"
  "libptperf_pt.a"
  "libptperf_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
