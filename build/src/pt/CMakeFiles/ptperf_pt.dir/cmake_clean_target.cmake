file(REMOVE_RECURSE
  "libptperf_pt.a"
)
