file(REMOVE_RECURSE
  "libptperf_tor.a"
)
