
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tor/cell.cc" "src/tor/CMakeFiles/ptperf_tor.dir/cell.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/cell.cc.o.d"
  "/root/repo/src/tor/client.cc" "src/tor/CMakeFiles/ptperf_tor.dir/client.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/client.cc.o.d"
  "/root/repo/src/tor/directory.cc" "src/tor/CMakeFiles/ptperf_tor.dir/directory.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/directory.cc.o.d"
  "/root/repo/src/tor/ntor.cc" "src/tor/CMakeFiles/ptperf_tor.dir/ntor.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/ntor.cc.o.d"
  "/root/repo/src/tor/onion.cc" "src/tor/CMakeFiles/ptperf_tor.dir/onion.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/onion.cc.o.d"
  "/root/repo/src/tor/path.cc" "src/tor/CMakeFiles/ptperf_tor.dir/path.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/path.cc.o.d"
  "/root/repo/src/tor/relay.cc" "src/tor/CMakeFiles/ptperf_tor.dir/relay.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/relay.cc.o.d"
  "/root/repo/src/tor/socks_server.cc" "src/tor/CMakeFiles/ptperf_tor.dir/socks_server.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/socks_server.cc.o.d"
  "/root/repo/src/tor/ting.cc" "src/tor/CMakeFiles/ptperf_tor.dir/ting.cc.o" "gcc" "src/tor/CMakeFiles/ptperf_tor.dir/ting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ptperf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptperf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ptperf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
