file(REMOVE_RECURSE
  "CMakeFiles/ptperf_tor.dir/cell.cc.o"
  "CMakeFiles/ptperf_tor.dir/cell.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/client.cc.o"
  "CMakeFiles/ptperf_tor.dir/client.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/directory.cc.o"
  "CMakeFiles/ptperf_tor.dir/directory.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/ntor.cc.o"
  "CMakeFiles/ptperf_tor.dir/ntor.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/onion.cc.o"
  "CMakeFiles/ptperf_tor.dir/onion.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/path.cc.o"
  "CMakeFiles/ptperf_tor.dir/path.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/relay.cc.o"
  "CMakeFiles/ptperf_tor.dir/relay.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/socks_server.cc.o"
  "CMakeFiles/ptperf_tor.dir/socks_server.cc.o.d"
  "CMakeFiles/ptperf_tor.dir/ting.cc.o"
  "CMakeFiles/ptperf_tor.dir/ting.cc.o.d"
  "libptperf_tor.a"
  "libptperf_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
