# Empty compiler generated dependencies file for ptperf_tor.
# This may be replaced when dependencies are built.
