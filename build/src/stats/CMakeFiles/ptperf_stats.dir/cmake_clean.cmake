file(REMOVE_RECURSE
  "CMakeFiles/ptperf_stats.dir/descriptive.cc.o"
  "CMakeFiles/ptperf_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/ptperf_stats.dir/table.cc.o"
  "CMakeFiles/ptperf_stats.dir/table.cc.o.d"
  "CMakeFiles/ptperf_stats.dir/ttest.cc.o"
  "CMakeFiles/ptperf_stats.dir/ttest.cc.o.d"
  "libptperf_stats.a"
  "libptperf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
