file(REMOVE_RECURSE
  "libptperf_stats.a"
)
