# Empty compiler generated dependencies file for ptperf_stats.
# This may be replaced when dependencies are built.
