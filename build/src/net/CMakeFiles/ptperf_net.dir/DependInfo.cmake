
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cc" "src/net/CMakeFiles/ptperf_net.dir/channel.cc.o" "gcc" "src/net/CMakeFiles/ptperf_net.dir/channel.cc.o.d"
  "/root/repo/src/net/dns.cc" "src/net/CMakeFiles/ptperf_net.dir/dns.cc.o" "gcc" "src/net/CMakeFiles/ptperf_net.dir/dns.cc.o.d"
  "/root/repo/src/net/http.cc" "src/net/CMakeFiles/ptperf_net.dir/http.cc.o" "gcc" "src/net/CMakeFiles/ptperf_net.dir/http.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/ptperf_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/ptperf_net.dir/network.cc.o.d"
  "/root/repo/src/net/socks.cc" "src/net/CMakeFiles/ptperf_net.dir/socks.cc.o" "gcc" "src/net/CMakeFiles/ptperf_net.dir/socks.cc.o.d"
  "/root/repo/src/net/tls.cc" "src/net/CMakeFiles/ptperf_net.dir/tls.cc.o" "gcc" "src/net/CMakeFiles/ptperf_net.dir/tls.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/ptperf_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/ptperf_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ptperf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptperf_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
