file(REMOVE_RECURSE
  "libptperf_net.a"
)
