file(REMOVE_RECURSE
  "CMakeFiles/ptperf_net.dir/channel.cc.o"
  "CMakeFiles/ptperf_net.dir/channel.cc.o.d"
  "CMakeFiles/ptperf_net.dir/dns.cc.o"
  "CMakeFiles/ptperf_net.dir/dns.cc.o.d"
  "CMakeFiles/ptperf_net.dir/http.cc.o"
  "CMakeFiles/ptperf_net.dir/http.cc.o.d"
  "CMakeFiles/ptperf_net.dir/network.cc.o"
  "CMakeFiles/ptperf_net.dir/network.cc.o.d"
  "CMakeFiles/ptperf_net.dir/socks.cc.o"
  "CMakeFiles/ptperf_net.dir/socks.cc.o.d"
  "CMakeFiles/ptperf_net.dir/tls.cc.o"
  "CMakeFiles/ptperf_net.dir/tls.cc.o.d"
  "CMakeFiles/ptperf_net.dir/topology.cc.o"
  "CMakeFiles/ptperf_net.dir/topology.cc.o.d"
  "libptperf_net.a"
  "libptperf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
