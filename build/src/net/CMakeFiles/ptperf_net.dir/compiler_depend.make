# Empty compiler generated dependencies file for ptperf_net.
# This may be replaced when dependencies are built.
