file(REMOVE_RECURSE
  "libptperf_core.a"
)
