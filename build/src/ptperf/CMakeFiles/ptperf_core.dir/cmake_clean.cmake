file(REMOVE_RECURSE
  "CMakeFiles/ptperf_core.dir/campaign.cc.o"
  "CMakeFiles/ptperf_core.dir/campaign.cc.o.d"
  "CMakeFiles/ptperf_core.dir/scenario.cc.o"
  "CMakeFiles/ptperf_core.dir/scenario.cc.o.d"
  "CMakeFiles/ptperf_core.dir/transports.cc.o"
  "CMakeFiles/ptperf_core.dir/transports.cc.o.d"
  "libptperf_core.a"
  "libptperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
