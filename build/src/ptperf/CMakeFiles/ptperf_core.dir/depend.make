# Empty dependencies file for ptperf_core.
# This may be replaced when dependencies are built.
