# Empty compiler generated dependencies file for example_bulk_download.
# This may be replaced when dependencies are built.
