file(REMOVE_RECURSE
  "CMakeFiles/example_bulk_download.dir/bulk_download.cpp.o"
  "CMakeFiles/example_bulk_download.dir/bulk_download.cpp.o.d"
  "example_bulk_download"
  "example_bulk_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bulk_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
