file(REMOVE_RECURSE
  "CMakeFiles/example_custom_transport.dir/custom_transport.cpp.o"
  "CMakeFiles/example_custom_transport.dir/custom_transport.cpp.o.d"
  "example_custom_transport"
  "example_custom_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
