# Empty compiler generated dependencies file for example_custom_transport.
# This may be replaced when dependencies are built.
