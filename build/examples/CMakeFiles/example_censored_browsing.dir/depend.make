# Empty dependencies file for example_censored_browsing.
# This may be replaced when dependencies are built.
