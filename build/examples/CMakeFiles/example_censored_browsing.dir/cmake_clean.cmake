file(REMOVE_RECURSE
  "CMakeFiles/example_censored_browsing.dir/censored_browsing.cpp.o"
  "CMakeFiles/example_censored_browsing.dir/censored_browsing.cpp.o.d"
  "example_censored_browsing"
  "example_censored_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_censored_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
